package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Supervisor owns the service's worker goroutines and the policy for
// keeping them alive. Work items are queued FIFO and executed by a fixed
// pool; a panic escaping a work item crashes only its worker, which the
// supervisor replaces after an exponentially growing backoff — unless the
// crash rate exceeds the restart intensity (MaxRestarts within Window), in
// which case the dead worker is not replaced and the supervisor reports
// itself degraded. Job-level panics are normally absorbed one layer below
// (the service wraps the run function, so a panicking simulation fails
// that job and nothing else); the supervisor is the backstop for bugs in
// the service's own bookkeeping.
type Supervisor struct {
	cfg SupervisorConfig

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []func()
	closed   bool
	alive    int
	restarts []time.Time // recent crash times inside the intensity window
	streak   int         // consecutive crashes since the last clean item
	stats    SupervisorStats
}

// SupervisorConfig tunes the restart policy. Zero values select the
// defaults noted per field.
type SupervisorConfig struct {
	// Workers is the pool size (default 4).
	Workers int
	// MaxRestarts bounds worker restarts within Window before the
	// supervisor gives up replacing the crashing worker (default 8).
	MaxRestarts int
	// Window is the restart-intensity accounting interval (default 1m).
	Window time.Duration
	// BaseBackoff is the delay before the first replacement worker starts;
	// it doubles per consecutive crash up to MaxBackoff (defaults 10ms,
	// 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnPanic, when non-nil, observes every worker crash (logging).
	OnPanic func(v any, stack []byte)

	// now and sleep are test seams; nil means the host clock.
	now   func() time.Time
	sleep func(time.Duration)
}

// SupervisorStats is a snapshot of the supervisor's counters.
type SupervisorStats struct {
	Workers    int    `json:"workers"`
	Alive      int    `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
	Panics     uint64 `json:"panics"`
	Restarts   uint64 `json:"restarts"`
	// GaveUp reports that the restart intensity was exceeded and at least
	// one worker was not replaced: the service is degraded.
	GaveUp bool `json:"gave_up"`
}

func (c *SupervisorConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 8
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.now == nil {
		c.now = hostNow
	}
	if c.sleep == nil {
		c.sleep = hostSleep
	}
}

// hostNow reads the host clock for restart-intensity accounting. This is
// pure orchestration state — it never reaches a journal, a results file,
// or any other result record.
func hostNow() time.Time {
	//lint:ignore wallclock supervisor restart-intensity accounting is host-side orchestration; it never feeds result records
	return time.Now()
}

// hostSleep paces worker restarts (exponential backoff).
func hostSleep(d time.Duration) {
	//lint:ignore wallclock supervisor restart backoff is host-side pacing; it never feeds result records
	time.Sleep(d)
}

// NewSupervisor builds a supervisor; Start launches the pool.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	cfg.fill()
	s := &Supervisor{cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	s.stats.Workers = cfg.Workers
	return s
}

// Start launches the worker pool. Items submitted before Start sit in the
// queue until it runs.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.alive++
		go s.worker()
	}
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: supervisor closed")

// Submit queues one work item. The queue is unbounded: submission never
// blocks on execution.
func (s *Supervisor) Submit(fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.queue = append(s.queue, fn)
	s.cond.Signal()
	return nil
}

// Close stops the pool: no further submissions are accepted, workers exit
// after their current item, and queued-but-unstarted items are dropped
// (on a daemon they are re-created from batch manifests at next startup).
// Close blocks until every live worker has exited.
func (s *Supervisor) Close() {
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	for s.alive > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Stats snapshots the supervisor counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Alive = s.alive
	st.QueueDepth = len(s.queue)
	return st
}

// next blocks for the next work item; ok=false means the supervisor is
// closed.
func (s *Supervisor) next() (func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, false
	}
	fn := s.queue[0]
	s.queue = s.queue[1:]
	return fn, true
}

// worker is one pool goroutine: it drains the queue until close, and on a
// panic hands itself to the crash policy.
func (s *Supervisor) worker() {
	normal := false
	defer func() {
		if normal {
			s.workerExited()
			return
		}
		s.workerCrashed(recover(), debug.Stack())
	}()
	for {
		fn, ok := s.next()
		if !ok {
			normal = true
			return
		}
		fn()
		s.noteClean()
	}
}

// noteClean resets the consecutive-crash streak: backoff growth restarts
// from the base once a worker completes an item.
func (s *Supervisor) noteClean() {
	s.mu.Lock()
	s.streak = 0
	s.mu.Unlock()
}

// workerExited records a clean shutdown.
func (s *Supervisor) workerExited() {
	s.mu.Lock()
	s.alive--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// workerCrashed applies the restart policy to one dead worker.
func (s *Supervisor) workerCrashed(v any, stack []byte) {
	if s.cfg.OnPanic != nil {
		s.cfg.OnPanic(v, stack)
	}
	now := s.cfg.now()

	s.mu.Lock()
	s.stats.Panics++
	s.streak++
	// Restart-intensity accounting: drop crashes that aged out of the
	// window, then check the budget.
	keep := s.restarts[:0]
	for _, t := range s.restarts {
		if now.Sub(t) < s.cfg.Window {
			keep = append(keep, t)
		}
	}
	s.restarts = keep
	if len(s.restarts) >= s.cfg.MaxRestarts {
		// Too hot: this worker stays dead and the supervisor reports
		// itself degraded. Remaining workers keep draining the queue.
		s.stats.GaveUp = true
		s.alive--
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.restarts = append(s.restarts, now)
	s.stats.Restarts++
	backoff := s.cfg.BaseBackoff << (s.streak - 1)
	if backoff > s.cfg.MaxBackoff || backoff <= 0 {
		backoff = s.cfg.MaxBackoff
	}
	s.mu.Unlock()

	go func() {
		s.cfg.sleep(backoff)
		s.worker()
	}()
}

// describePanic renders a recovered value the way job records report it.
// The text is a pure function of the panic value, so a deterministic
// failure journals identically on every run.
func describePanic(v any) string {
	return fmt.Sprintf("job panicked: %v", v)
}
