package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sweep"
)

// batch is the runtime state of one submitted batch. Its key list is the
// deduplicated, canonically ordered plan fixed at submission (and persisted
// in the manifest): the order of the results journal, independent of how
// the client spelled the request.
type batch struct {
	id     string
	tenant string
	keys   []sweep.JobKey
	fps    []string // fingerprints, parallel to keys

	// All mutable state below is guarded by the owning Service's mu;
	// events are appended and fanned out under that same lock, which is
	// what makes "seq order == arrival order" hold for every subscriber.
	records map[string]JobRecord
	failed  int
	state   string
	err     string // terminal fault when state == StateError
	journal *BatchJournal
	events  []Event
	subs    map[chan Event]bool
}

func (b *batch) status() BatchStatus {
	return BatchStatus{
		ID:        b.id,
		Tenant:    b.tenant,
		State:     b.state,
		Jobs:      len(b.keys),
		Completed: len(b.records),
		Failed:    b.failed,
		Error:     b.err,
	}
}

func (b *batch) closeJournal() {
	if b.journal != nil {
		if err := b.journal.Close(); err != nil {
			_ = err // nothing actionable at shutdown; resume re-runs any lost tail
		}
		b.journal = nil
	}
}

// Submit registers a new batch and queues its jobs. The returned status is
// the batch's initial state (202 body).
func (s *Service[R]) Submit(req BatchRequest) (BatchStatus, error) {
	if len(req.Keys) == 0 {
		return BatchStatus{}, fmt.Errorf("serve: batch has no keys")
	}
	keys := sweep.Dedup(append([]sweep.JobKey(nil), req.Keys...))
	sweep.SortCanonical(keys)

	id := s.store.NewBatchID()
	m := Manifest{ID: id, Tenant: req.Tenant, Keys: keys}
	if err := s.store.WriteManifest(m); err != nil {
		return BatchStatus{}, err
	}
	b, err := s.addBatch(m)
	if err != nil {
		return BatchStatus{}, err
	}
	s.count(func() { s.batchesIn.Inc() })
	s.logf("batch %s: %d jobs (tenant %q)", id, len(keys), req.Tenant)
	s.enqueue(b, nil)

	s.mu.Lock()
	defer s.mu.Unlock()
	return b.status(), nil
}

// addBatch builds the runtime state for a manifest and registers it.
func (s *Service[R]) addBatch(m Manifest) (*batch, error) {
	journal, err := s.store.OpenJournal(m.ID)
	if err != nil {
		return nil, err
	}
	b := &batch{
		id:      m.ID,
		tenant:  m.Tenant,
		keys:    m.Keys,
		records: make(map[string]JobRecord),
		state:   StateRunning,
		journal: journal,
		subs:    make(map[chan Event]bool),
	}
	for _, k := range m.Keys {
		b.fps = append(b.fps, k.Fingerprint())
	}
	s.mu.Lock()
	s.batches[m.ID] = b
	s.order = append(s.order, m.ID)
	s.mu.Unlock()
	return b, nil
}

// enqueue submits every job of the batch not already in done to the
// supervised pool.
func (s *Service[R]) enqueue(b *batch, done map[string]bool) {
	for i := range b.keys {
		if done[b.fps[i]] {
			continue
		}
		key, fp := b.keys[i], b.fps[i]
		if err := s.sup.Submit(func() { s.runJob(b, key, fp) }); err != nil {
			// Closed during shutdown: the manifest re-creates the work at
			// next startup.
			return
		}
	}
}

// runJob executes (or cache-serves) one job of a batch and records the
// outcome. This is the only writer of batch records.
func (s *Service[R]) runJob(b *batch, key sweep.JobKey, fp string) {
	res, runErr := s.eng.Get(key)
	rec := JobRecord{Fingerprint: fp, Seed: key.Seed(), Key: key}
	var summary *JobSummary
	if runErr != nil {
		rec.Status, rec.Error = JobFailed, runErr.Error()
	} else if payload, err := json.Marshal(res); err != nil {
		rec.Status, rec.Error = JobFailed, fmt.Sprintf("marshaling result: %v", err)
	} else {
		rec.Status, rec.Result = JobOK, payload
		if s.cfg.Describe != nil {
			summary = s.cfg.Describe(res)
		}
	}
	if err := b.journal.Append(rec); err != nil {
		s.logf("batch %s: journal %s: %v", b.id, fp, err)
	}
	s.completeJob(b, rec, summary, true)
}

// completeJob folds one settled job into the batch and emits its event.
// live distinguishes fresh completions from journal replays at startup
// (replays carry no progress snapshot and no metrics delta).
func (s *Service[R]) completeJob(b *batch, rec JobRecord, summary *JobSummary, live bool) {
	raw, err := json.Marshal(rec)
	if err != nil { // unreachable: rec is marshal-clean by construction
		s.logf("batch %s: record %s: %v", b.id, rec.Fingerprint, err)
		return
	}

	ev := Event{
		Type:        EventJob,
		Batch:       b.id,
		Fingerprint: rec.Fingerprint,
		Key:         rec.Key.Canonical(),
		Status:      rec.Status,
		Error:       rec.Error,
		Summary:     summary,
	}
	if live {
		p := s.eng.Stats()
		ev.Progress = &p
		if rec.Status == JobOK {
			s.count(func() { s.jobsOK.Inc() })
		} else {
			s.count(func() { s.jobsFailed.Inc() })
		}
		ev.Metrics = s.metricsDelta()
	}

	s.mu.Lock()
	if _, dup := b.records[rec.Fingerprint]; dup || b.state != StateRunning {
		s.mu.Unlock()
		return
	}
	b.records[rec.Fingerprint] = rec
	if rec.Status == JobFailed {
		b.failed++
	}
	s.jobs[rec.Fingerprint] = raw
	s.emitLocked(b, ev)
	complete := len(b.records) == len(b.keys)
	s.mu.Unlock()

	// During startup replay the resume loop owns the finish decision (a
	// settled batch must not rewrite its results file).
	if complete && live {
		s.finishBatch(b)
	}
}

// finishBatch writes the canonical results journal and emits the terminal
// event.
func (s *Service[R]) finishBatch(b *batch) {
	s.mu.Lock()
	recs := make([]JobRecord, 0, len(b.keys))
	for _, fp := range b.fps {
		recs = append(recs, b.records[fp])
	}
	s.mu.Unlock()

	state, terminalErr := StateDone, ""
	if err := s.store.WriteResults(b.id, recs); err != nil {
		state, terminalErr = StateError, err.Error()
		s.logf("batch %s: results: %v", b.id, err)
	}

	s.mu.Lock()
	b.state, b.err = state, terminalErr
	b.closeJournal()
	st := b.status()
	s.emitLocked(b, Event{
		Type: EventBatch, Batch: b.id,
		State: st.State, Error: st.Error,
		Jobs: st.Jobs, Completed: st.Completed, Failed: st.Failed,
	})
	// The terminal event ends every stream: close subscriber channels so
	// handlers return.
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
	s.mu.Unlock()

	if state == StateDone {
		s.count(func() { s.batchesDone.Inc() })
	}
	s.logf("batch %s: %s (%d jobs, %d failed)", b.id, state, st.Jobs, st.Failed)
}

// emitLocked assigns the event's sequence number, appends it to the batch
// history, and fans it out. Callers hold s.mu — that single lock is the
// ordering guarantee: every subscriber observes events in seq order. A
// subscriber too slow to keep up is disconnected (its channel closed)
// rather than allowed to stall the sweep.
func (s *Service[R]) emitLocked(b *batch, ev Event) {
	ev.Seq = len(b.events) + 1
	ev.Epoch = s.epoch
	b.events = append(b.events, ev)
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(b.subs, ch)
		}
	}
}

// subscribe atomically snapshots the batch's event history and registers a
// live channel. A nil channel means the batch is already terminal: the
// history is complete and there is nothing to wait for.
func (s *Service[R]) subscribe(b *batch) ([]Event, chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history := append([]Event(nil), b.events...)
	if b.state != StateRunning {
		return history, nil
	}
	ch := make(chan Event, 256)
	b.subs[ch] = true
	return history, ch
}

// unsubscribe removes a live channel (client went away).
func (s *Service[R]) unsubscribe(b *batch, ch chan Event) {
	if ch == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.subs[ch] {
		delete(b.subs, ch)
		close(ch)
	}
}

// Batch returns the status of one batch.
func (s *Service[R]) Batch(id string) (BatchStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	if !ok {
		return BatchStatus{}, false
	}
	return b.status(), true
}

// Batches lists every batch status in creation order.
func (s *Service[R]) Batches() []BatchStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BatchStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.batches[id].status())
	}
	return out
}

// Results opens the batch's results journal; it exists only once the batch
// is done.
func (s *Service[R]) Results(id string) (io.ReadCloser, error) {
	st, ok := s.Batch(id)
	if !ok {
		return nil, fmt.Errorf("serve: unknown batch %s", id)
	}
	if st.State == StateRunning {
		return nil, fmt.Errorf("serve: batch %s is still running", id)
	}
	return s.store.OpenResults(id)
}

// Job returns the marshaled record of a settled job by fingerprint. The
// second return distinguishes "settled" from "known but in flight" (false,
// with inFlight true) and "never seen" (false, false).
func (s *Service[R]) Job(fingerprint string) (raw json.RawMessage, settled, inFlight bool) {
	s.mu.Lock()
	raw, settled = s.jobs[fingerprint]
	s.mu.Unlock()
	if settled {
		return raw, true, false
	}
	if st, known := s.eng.Lookup(fingerprint); known && !st.Done {
		return nil, false, true
	}
	return nil, false, false
}

// resume reloads every stored batch at startup: journals replay into the
// memo cache first (so shared jobs across batches dedupe before anything
// re-runs), then completed batches are restored as served results and
// incomplete ones re-queued with only their missing jobs.
func (s *Service[R]) resume() error {
	manifests, err := s.store.LoadManifests()
	if err != nil {
		return fmt.Errorf("serve: loading batches: %w", err)
	}
	// Pass 1: every intact journaled success joins the memo cache, so
	// jobs shared across batches dedupe before anything re-runs.
	for _, m := range manifests {
		r, err := s.store.OpenReplayReader(m.ID)
		if err != nil {
			return fmt.Errorf("serve: journal %s: %w", m.ID, err)
		}
		_, rerr := s.eng.Resume(r)
		r.Close()
		if rerr != nil {
			return fmt.Errorf("serve: replaying %s: %w", m.ID, rerr)
		}
	}
	// Pass 2: rebuild batch state. Settled batches replay from their
	// results file (the authoritative artifact); in-flight ones from the
	// streamed journal.
	resumed := 0
	for _, m := range manifests {
		var recs []JobRecord
		var err error
		if s.store.HasResults(m.ID) {
			recs, err = s.store.ReadResults(m.ID)
		} else {
			recs, err = s.store.ReadJournal(m.ID)
		}
		if err != nil {
			return fmt.Errorf("serve: journal %s: %w", m.ID, err)
		}
		b, err := s.addBatch(m)
		if err != nil {
			return err
		}
		// Replay settled jobs in their journaled completion order; the
		// plan is the filter (a journal may hold records for keys the
		// manifest no longer lists — they stay in the memo cache only).
		planned := make(map[string]bool, len(b.fps))
		for _, fp := range b.fps {
			planned[fp] = true
		}
		done := make(map[string]bool, len(recs))
		for _, rec := range recs {
			if !planned[rec.Fingerprint] {
				continue
			}
			s.completeJob(b, rec, nil, false)
			done[rec.Fingerprint] = true
		}
		s.mu.Lock()
		complete := len(b.records) == len(b.keys) && b.state == StateRunning
		s.mu.Unlock()
		if s.store.HasResults(m.ID) {
			// Already settled in a previous life: freeze it without
			// rewriting results (the file on disk is the artifact).
			s.mu.Lock()
			b.state = StateDone
			b.closeJournal()
			st := b.status()
			s.emitLocked(b, Event{
				Type: EventBatch, Batch: b.id,
				State: st.State, Jobs: st.Jobs, Completed: st.Completed, Failed: st.Failed,
			})
			s.mu.Unlock()
			continue
		}
		if complete {
			// Crashed after the last job but before the results write.
			s.finishBatch(b)
			continue
		}
		resumed++
		s.logf("batch %s: resuming %d/%d jobs", m.ID, len(b.keys)-len(done), len(b.keys))
		s.enqueue(b, done)
	}
	if resumed > 0 {
		s.logf("resumed %d in-flight batches", resumed)
	}
	return nil
}

// count runs a counter mutation under the registry lock.
func (s *Service[R]) count(fn func()) {
	s.regMu.Lock()
	fn()
	s.regMu.Unlock()
}

// metricsDelta snapshots the service registry and returns the samples that
// changed since the last emitted delta — the incremental stream form.
func (s *Service[R]) metricsDelta() metrics.Snapshot {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	snap := s.reg.Snapshot()
	delta := snap.Diff(s.lastSnap)
	s.lastSnap = snap
	return delta
}

// MetricsSnapshot freezes the full service registry.
func (s *Service[R]) MetricsSnapshot() metrics.Snapshot {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.reg.Snapshot()
}

// registerMetrics builds the service registry: batch/job counters plus
// live supervisor health.
func (s *Service[R]) registerMetrics() {
	s.reg = metrics.NewRegistry()
	s.batchesIn = s.reg.Counter("serve/batches_submitted")
	s.batchesDone = s.reg.Counter("serve/batches_done")
	s.jobsOK = s.reg.Counter("serve/jobs_ok")
	s.jobsFailed = s.reg.Counter("serve/jobs_failed")
	s.reg.CounterFunc("serve/sup/panics", func() uint64 { return s.sup.Stats().Panics })
	s.reg.CounterFunc("serve/sup/restarts", func() uint64 { return s.sup.Stats().Restarts })
	s.reg.GaugeFunc("serve/sup/alive", func() float64 { return float64(s.sup.Stats().Alive) })
	s.reg.GaugeFunc("serve/sup/queue_depth", func() float64 { return float64(s.sup.Stats().QueueDepth) })
	s.reg.GaugeFunc("serve/sup/gave_up", func() float64 {
		if s.sup.Stats().GaveUp {
			return 1
		}
		return 0
	})
}

// Health snapshots the daemon's health surface.
func (s *Service[R]) Health() Health {
	sup := s.sup.Stats()
	state := "ok"
	if sup.GaveUp {
		state = "degraded"
	}
	s.mu.Lock()
	n := len(s.batches)
	s.mu.Unlock()
	return Health{
		State:      state,
		Batches:    n,
		Supervisor: sup,
		Progress:   s.eng.Stats(),
		Metrics:    s.MetricsSnapshot(),
	}
}
