package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mgpucompress/internal/sweep"
)

func testKey(workload, policy string, scale int) sweep.JobKey {
	return sweep.JobKey{Workload: workload, Policy: policy, Scale: scale}
}

func testRecord(k sweep.JobKey) JobRecord {
	return JobRecord{
		Fingerprint: k.Fingerprint(),
		Seed:        k.Seed(),
		Key:         k,
		Status:      JobOK,
		Result:      json.RawMessage(`{"value":"` + k.Workload + `"}`),
	}
}

func TestBatchIDContinuity(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if id := st.NewBatchID(); id != "b000001" {
		t.Fatalf("first ID = %q, want b000001", id)
	}
	id2 := st.NewBatchID()
	if id2 != "b000002" {
		t.Fatalf("second ID = %q, want b000002", id2)
	}
	// IDs are only durable once a batch directory exists.
	if err := st.WriteManifest(Manifest{ID: id2, Keys: []sweep.JobKey{testKey("AES", "fpc", 1)}}); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if id := st2.NewBatchID(); id != "b000003" {
		t.Fatalf("ID after reopen = %q, want b000003 (continue past stored batches)", id)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []Manifest{
		{ID: "b000001", Tenant: "alice", Keys: []sweep.JobKey{testKey("AES", "fpc", 1)}},
		{ID: "b000002", Keys: []sweep.JobKey{testKey("BS", "bdi", 2), testKey("MM", "", 0)}},
	}
	// Write out of order: LoadManifests must sort by ID.
	for i := len(want) - 1; i >= 0; i-- {
		if err := st.WriteManifest(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A torn manifest (crash mid-write before rename never leaves one, but a
	// corrupted disk might) is skipped, not fatal.
	if err := os.MkdirAll(st.batchDir("b000003"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.manifestPath("b000003"), []byte(`{"id":"b0000`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A batch dir with no manifest at all (crash between mkdir and write).
	if err := os.MkdirAll(st.batchDir("b000004"), 0o755); err != nil {
		t.Fatal(err)
	}

	got, err := st.LoadManifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "b000001" || got[1].ID != "b000002" {
		t.Fatalf("LoadManifests = %+v, want the two intact manifests in ID order", got)
	}
	if got[0].Tenant != "alice" || len(got[1].Keys) != 2 {
		t.Fatalf("manifest content mangled: %+v", got)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "b000001"
	if err := os.MkdirAll(st.batchDir(id), 0o755); err != nil {
		t.Fatal(err)
	}
	good := testRecord(testKey("AES", "fpc", 1))
	line, _ := json.Marshal(good)
	// A journal whose final line was cut mid-record by a crash.
	torn := append(append([]byte{}, line...), '\n')
	torn = append(torn, []byte(`{"fingerprint":"deadbeef","seed":12,"ke`)...)
	if err := os.WriteFile(st.journalPath(id), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := st.ReadJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != good.Fingerprint {
		t.Fatalf("ReadJournal over torn tail = %+v, want just the intact record", recs)
	}

	// Appending after the crash must start on a fresh line, not glue the new
	// record onto the torn tail.
	j, err := st.OpenJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	next := testRecord(testKey("BS", "bdi", 2))
	if err := j.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = st.ReadJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Fingerprint != next.Fingerprint {
		t.Fatalf("journal after post-crash append = %+v, want 2 records", recs)
	}
}

func TestReadJournalDistrustsStoredFingerprints(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "b000001"
	if err := os.MkdirAll(st.batchDir(id), 0o755); err != nil {
		t.Fatal(err)
	}
	good := testRecord(testKey("AES", "fpc", 1))
	stale := testRecord(testKey("BS", "bdi", 2))
	stale.Fingerprint = "0000000000000000" // key no longer hashes to this
	dup := good                            // duplicate fingerprint: first record wins
	dup.Result = json.RawMessage(`{"value":"SECOND"}`)

	var buf bytes.Buffer
	for _, rec := range []JobRecord{good, stale, dup} {
		line, _ := json.Marshal(rec)
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(st.journalPath(id), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := st.ReadJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != good.Fingerprint {
		t.Fatalf("ReadJournal = %+v, want only the first intact record", recs)
	}
	if string(recs[0].Result) != string(good.Result) {
		t.Fatalf("duplicate fingerprint replaced the first record: %s", recs[0].Result)
	}
}

func TestWriteResultsPureAndAtomic(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "b000001"
	if err := os.MkdirAll(st.batchDir(id), 0o755); err != nil {
		t.Fatal(err)
	}
	recs := []JobRecord{testRecord(testKey("AES", "fpc", 1)), testRecord(testKey("BS", "bdi", 2))}
	if err := st.WriteResults(id, recs); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(st.resultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteResults(id, recs); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(st.resultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("WriteResults is not a pure function of the records")
	}
	// No temp residue: the write landed via rename.
	if _, err := os.Stat(st.resultsPath(id) + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	if !st.HasResults(id) {
		t.Fatal("HasResults false after WriteResults")
	}

	back, err := st.ReadResults(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Fingerprint != recs[0].Fingerprint {
		t.Fatalf("ReadResults = %+v", back)
	}
}

func TestOpenReplayReaderPrefersResults(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "b000001"
	if err := os.MkdirAll(st.batchDir(id), 0o755); err != nil {
		t.Fatal(err)
	}

	replay := func() string {
		rc, err := st.OpenReplayReader(id)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		b, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// No files at all: an empty stream, not an error.
	if got := replay(); got != "" {
		t.Fatalf("empty batch replay = %q", got)
	}

	if err := os.WriteFile(st.journalPath(id), []byte("journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replay(); got != "journal\n" {
		t.Fatalf("in-flight batch replays %q, want the journal", got)
	}

	if err := os.WriteFile(st.resultsPath(id), []byte("results\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replay(); got != "results\n" {
		t.Fatalf("settled batch replays %q, want the results file", got)
	}
}

func TestJournalFilesLiveUnderBatchDir(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.OpenJournal("b000007")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(testKey("AES", "", 0))); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "batches", "b000007", "journal.jsonl")); err != nil {
		t.Fatalf("journal not where expected: %v", err)
	}
}
