package serve

import (
	"encoding/json"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sweep"
	"mgpucompress/internal/trace"
)

// This file is the wire surface of the sweep service: every type that
// crosses the HTTP boundary, with field order fixed so marshaled artifacts
// are byte-stable.

// BatchRequest is the POST /v1/batches body: a set of job keys to run (or
// serve from the memo cache) as one named unit. Tenant is an accounting
// label; deduplication is global, so two tenants submitting the same key
// share one simulation.
type BatchRequest struct {
	Tenant string         `json:"tenant,omitempty"`
	Keys   []sweep.JobKey `json:"keys"`
}

// Batch states as reported by BatchStatus.State.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateError   = "error"
)

// BatchStatus is the GET /v1/batches/{id} response (and the body of the
// 202 returned by a submission).
type BatchStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	State  string `json:"state"`
	// Jobs is the size of the batch's deduplicated, canonically ordered
	// plan; Completed counts settled jobs, Failed the subset that errored.
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Error carries the terminal fault of a batch in StateError (e.g. the
	// results file could not be written).
	Error string `json:"error,omitempty"`
}

// Job record statuses.
const (
	JobOK     = "ok"
	JobFailed = "failed"
)

// JobRecord is one line of a batch journal and of the final results
// journal, and the GET /v1/jobs/{fingerprint} response. For a successful
// job the Fingerprint/Seed/Key/Result fields line up with sweep.Record, so
// a downloaded results journal can be replayed straight into an engine via
// sweep.Engine.Resume (failed records carry no Result and are skipped by
// the replay, which re-runs them deterministically).
type JobRecord struct {
	Fingerprint string          `json:"fingerprint"`
	Seed        int64           `json:"seed"`
	Key         sweep.JobKey    `json:"key"`
	Status      string          `json:"status"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// Manifest is the on-disk description of a submitted batch, written before
// any of its jobs run: after a crash it is the authoritative plan the
// daemon resumes. Keys are stored deduplicated in canonical order — the
// order of the results journal.
type Manifest struct {
	ID     string         `json:"id"`
	Tenant string         `json:"tenant,omitempty"`
	Keys   []sweep.JobKey `json:"keys"`
}

// Event types on the SSE stream.
const (
	EventJob   = "job"   // one job settled
	EventBatch = "batch" // terminal: the batch reached StateDone/StateError
	EventGap   = "gap"   // reconnect watermark did not match this stream
)

// Event is one SSE frame on GET /v1/batches/{id}/events. Seq increases by
// one per event within a batch; exactly one terminal EventBatch frame ends
// every stream. Epoch is the daemon's boot counter: a restarted daemon
// rebuilds batch histories from its journals with fresh sequence numbers,
// so (epoch, seq) — not seq alone — is the resume watermark a client must
// present when reconnecting.
//
// A synthetic EventGap frame (seq 0, Since = the client's stale watermark)
// opens the stream when the presented watermark does not identify a point
// in the current history — wrong epoch after a restart, or a seq beyond
// what this life recorded. Everything after the gap frame is the full
// rebuilt history: the client knows it is re-observing, not continuing.
type Event struct {
	Seq   int    `json:"seq"`
	Epoch int64  `json:"epoch,omitempty"`
	Type  string `json:"type"`
	Batch string `json:"batch"`

	// Since echoes, on an EventGap frame only, the seq watermark the
	// client presented and the server could not honor.
	Since int `json:"since,omitempty"`

	// Job-event fields.
	Fingerprint string `json:"fingerprint,omitempty"`
	Key         string `json:"key,omitempty"` // canonical form
	Status      string `json:"status,omitempty"`
	Error       string `json:"error,omitempty"`
	// Progress snapshots the engine counters at emission (live events
	// only; events replayed from a journal after a restart omit it).
	Progress *sweep.Progress `json:"progress,omitempty"`
	// Summary condenses the job's result (Config.Describe hook).
	Summary *JobSummary `json:"summary,omitempty"`
	// Metrics is the incremental service-registry snapshot: the samples
	// that changed since the previous event on any batch.
	Metrics metrics.Snapshot `json:"metrics,omitempty"`

	// Terminal-event fields (mirrors BatchStatus).
	State     string `json:"state,omitempty"`
	Jobs      int    `json:"jobs,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Failed    int    `json:"failed,omitempty"`
}

// JobSummary condenses one completed job for the event stream: headline
// simulation numbers, the size of its metric snapshot, and a span-timeline
// summary. The daemon's Describe hook fills it from the simulator result.
type JobSummary struct {
	ExecCycles    uint64         `json:"exec_cycles,omitempty"`
	FabricBytes   uint64         `json:"fabric_bytes,omitempty"`
	MetricSamples int            `json:"metric_samples,omitempty"`
	Spans         *trace.Summary `json:"spans,omitempty"`
}

// Health is the GET /v1/healthz response.
type Health struct {
	State      string           `json:"state"` // "ok" or "degraded" (supervisor gave up)
	Batches    int              `json:"batches"`
	Supervisor SupervisorStats  `json:"supervisor"`
	Progress   sweep.Progress   `json:"progress"`
	Metrics    metrics.Snapshot `json:"metrics,omitempty"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}
