package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock pins the supervisor's now/sleep seams: time stands still unless
// the test advances it, and every backoff sleep is recorded instead of
// actually waited out.
type fakeClock struct {
	mu     sync.Mutex
	at     time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{at: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.at = c.at.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
}

func (c *fakeClock) slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

func TestSupervisorDrainsQueue(t *testing.T) {
	sup := NewSupervisor(SupervisorConfig{Workers: 3})
	var wg sync.WaitGroup
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 20; i++ {
		wg.Add(1)
		if err := sup.Submit(func() {
			defer wg.Done()
			mu.Lock()
			ran++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	sup.Start()
	wg.Wait()
	if ran != 20 {
		t.Fatalf("ran %d items, want 20", ran)
	}
	st := sup.Stats()
	if st.Alive != 3 || st.Panics != 0 || st.GaveUp {
		t.Fatalf("stats after clean drain = %+v", st)
	}
	sup.Close()
	if err := sup.Submit(func() {}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if st := sup.Stats(); st.Alive != 0 {
		t.Fatalf("alive after Close = %d, want 0", st.Alive)
	}
}

func TestSupervisorReplacesPanickedWorker(t *testing.T) {
	clock := newFakeClock()
	panicked := make(chan any, 8)
	sup := NewSupervisor(SupervisorConfig{
		Workers:     1,
		MaxRestarts: 8,
		OnPanic:     func(v any, stack []byte) { panicked <- v },
		now:         clock.now,
		sleep:       clock.sleep,
	})
	sup.Start()

	if err := sup.Submit(func() { panic("worker bug") }); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-panicked:
		if v != "worker bug" {
			t.Fatalf("OnPanic value = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panic never observed")
	}

	// The replacement worker must still drain the queue.
	done := make(chan struct{})
	if err := sup.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("replacement worker never ran the next item")
	}

	st := sup.Stats()
	if st.Panics != 1 || st.Restarts != 1 || st.GaveUp || st.Alive != 1 {
		t.Fatalf("stats = %+v, want 1 panic, 1 restart, alive, not given up", st)
	}
	sup.Close()
}

func TestSupervisorBackoffDoublesAndCaps(t *testing.T) {
	clock := newFakeClock()
	panicked := make(chan any, 16)
	sup := NewSupervisor(SupervisorConfig{
		Workers:     1,
		MaxRestarts: 100, // stay inside the intensity budget
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		OnPanic:     func(v any, stack []byte) { panicked <- v },
		now:         clock.now,
		sleep:       clock.sleep,
	})
	sup.Start()

	// Five consecutive crashes with no clean item in between: the backoff
	// doubles from the base and saturates at the cap.
	for i := 0; i < 5; i++ {
		if err := sup.Submit(func() { panic("again") }); err != nil {
			t.Fatal(err)
		}
		select {
		case <-panicked:
		case <-time.After(5 * time.Second):
			t.Fatalf("crash %d never observed", i)
		}
	}
	// A clean item proves the last replacement is live and resets the streak.
	done := make(chan struct{})
	if err := sup.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done

	want := []time.Duration{10, 20, 40, 40, 40}
	got := clock.slept()
	if len(got) != len(want) {
		t.Fatalf("backoffs = %v, want 5 entries", got)
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("backoff[%d] = %v, want %v (full series %v)", i, got[i], want[i]*time.Millisecond, got)
		}
	}

	// One more crash after the clean item: streak reset, backoff is back to
	// the base.
	if err := sup.Submit(func() { panic("fresh streak") }); err != nil {
		t.Fatal(err)
	}
	<-panicked
	done2 := make(chan struct{})
	if err := sup.Submit(func() { close(done2) }); err != nil {
		t.Fatal(err)
	}
	<-done2
	got = clock.slept()
	if last := got[len(got)-1]; last != 10*time.Millisecond {
		t.Fatalf("backoff after clean item = %v, want base again", last)
	}
	sup.Close()
}

func TestSupervisorGivesUpPastRestartIntensity(t *testing.T) {
	clock := newFakeClock()
	panicked := make(chan any, 8)
	sup := NewSupervisor(SupervisorConfig{
		Workers:     1,
		MaxRestarts: 2,
		Window:      time.Minute,
		OnPanic:     func(v any, stack []byte) { panicked <- v },
		now:         clock.now,
		sleep:       clock.sleep,
	})
	sup.Start()

	// The clock never advances: all crashes land inside one window. Crash 1
	// and 2 consume the restart budget; crash 3 exceeds it and the worker
	// stays dead.
	for i := 0; i < 3; i++ {
		if err := sup.Submit(func() { panic("hot loop") }); err != nil {
			t.Fatal(err)
		}
		select {
		case <-panicked:
		case <-time.After(5 * time.Second):
			t.Fatalf("crash %d never observed", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sup.Stats()
		if st.GaveUp {
			if st.Alive != 0 || st.Restarts != 2 || st.Panics != 3 {
				t.Fatalf("degraded stats = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never gave up: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// Close must not hang even with every worker dead.
	sup.Close()
}

func TestSupervisorWindowPruning(t *testing.T) {
	clock := newFakeClock()
	panicked := make(chan any, 8)
	sup := NewSupervisor(SupervisorConfig{
		Workers:     1,
		MaxRestarts: 2,
		Window:      time.Minute,
		OnPanic:     func(v any, stack []byte) { panicked <- v },
		now:         clock.now,
		sleep:       clock.sleep,
	})
	sup.Start()

	// Crashes spaced wider than the window never accumulate: the supervisor
	// keeps restarting indefinitely.
	for i := 0; i < 5; i++ {
		if err := sup.Submit(func() { panic("spaced out") }); err != nil {
			t.Fatal(err)
		}
		select {
		case <-panicked:
		case <-time.After(5 * time.Second):
			t.Fatalf("crash %d never observed", i)
		}
		clock.advance(2 * time.Minute)
	}
	done := make(chan struct{})
	if err := sup.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker not alive after spaced crashes")
	}
	st := sup.Stats()
	if st.GaveUp || st.Restarts != 5 {
		t.Fatalf("stats = %+v, want 5 restarts and no give-up", st)
	}
	sup.Close()
}
