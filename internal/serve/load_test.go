package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mgpucompress/internal/sweep"
)

// loadPlan builds n distinct job keys spanning workloads, policies and
// scales, salted with a few deterministic failures so the failure paths are
// inside the load contract too.
func loadPlan(n int) []sweep.JobKey {
	workloads := []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
	policies := []string{"none", "fpc", "bdi", "cpackz", "adaptive"}
	keys := make([]sweep.JobKey, 0, n)
	for i := 0; len(keys) < n; i++ {
		w := workloads[i%len(workloads)]
		if i%29 == 13 {
			w = "FAIL"
		}
		if i%41 == 27 {
			w = "PANIC"
		}
		k := testKey(w, policies[i%len(policies)], 1+i/len(workloads))
		k.CUsPerGPU = 1 + i%3 // keeps salted FAIL/PANIC keys distinct
		keys = append(keys, k)
	}
	return keys
}

// loadConsumer follows one batch's event stream to its terminal event the
// way a flaky client would: it drops the connection after a random number of
// frames and reconnects presenting the (epoch, seq) watermark of the last
// event it saw. It returns every event accepted across all connections.
//
// The protocol assertions live here: frames after a same-epoch watermark
// resume are seq-contiguous and gap-frame-free, and the terminal batch event
// arrives exactly once, last.
func loadConsumer(t *testing.T, c *Client, id string, seed int64) []Event {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var got []Event
	epoch, after := int64(0), 0
	conns := 0
	for {
		conns++
		if conns > 10_000 {
			t.Errorf("consumer %d: no terminal event after %d connections", seed, conns)
			return got
		}
		dropAfter := 1 + rng.Intn(40) // frames to accept before hanging up
		terminal := false
		err := c.Events(id, epoch, after, func(ev Event) bool {
			if ev.Type == EventGap {
				t.Errorf("consumer %d: gap frame on a live daemon: %+v", seed, ev)
				return false
			}
			if ev.Seq != after+1 {
				t.Errorf("consumer %d: seq %d after watermark %d, want %d", seed, ev.Seq, after, after+1)
				return false
			}
			got = append(got, ev)
			epoch, after = ev.Epoch, ev.Seq
			if ev.Type == EventBatch {
				terminal = true
				return false
			}
			dropAfter--
			return dropAfter > 0
		})
		if err != nil {
			t.Errorf("consumer %d: %v", seed, err)
			return got
		}
		if terminal {
			return got
		}
		// Dropped mid-stream (or the server hung up on a slow channel):
		// reconnect from the watermark, sometimes after a beat so the next
		// connection lands in replay-from-history rather than live fan-out.
		if rng.Intn(4) == 0 {
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}
}

// TestServeLoad is the Savina-style fan-out/fan-in gate for the sweepd API:
// one large batch fans out across the supervised worker pool while many
// concurrent SSE consumers — all dropping and resuming mid-stream — fan its
// event stream back in. Every consumer must observe the complete, gapless
// event sequence ending in exactly one terminal event, and the daemon's
// results artifact must be byte-identical to a direct internal/sweep run of
// the same plan.
//
// Scale comes from SERVE_LOAD_JOBS / SERVE_LOAD_CONSUMERS (the serve-load
// make target raises both); -short shrinks it to a smoke that still
// exercises every code path.
func TestServeLoad(t *testing.T) {
	jobs, consumers := 300, 32
	if testing.Short() {
		jobs, consumers = 60, 8
	}
	if v, err := strconv.Atoi(os.Getenv("SERVE_LOAD_JOBS")); err == nil && v > 0 {
		jobs = v
	}
	if v, err := strconv.Atoi(os.Getenv("SERVE_LOAD_CONSUMERS")); err == nil && v > 0 {
		consumers = v
	}

	s := newTestService(t, t.TempDir(), func(c *Config[testResult]) {
		inner := c.Run
		c.Run = func(k sweep.JobKey) (testResult, error) {
			time.Sleep(time.Millisecond) // spread completions so consumers stream live
			return inner(k)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}

	keys := loadPlan(jobs)
	st, err := s.Submit(BatchRequest{Tenant: "load", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}

	plan := sweep.Dedup(append([]sweep.JobKey(nil), keys...))
	sweep.SortCanonical(plan)

	// Fan-out: every consumer follows the stream concurrently with the
	// batch's execution, each with its own reconnect schedule.
	streams := make([][]Event, consumers)
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i] = loadConsumer(t, c, st.ID, int64(i+1))
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Fan-in: every consumer saw the identical complete sequence.
	want := make(map[string]bool, len(plan))
	for _, k := range plan {
		want[k.Fingerprint()] = true
	}
	for i, events := range streams {
		if len(events) != len(plan)+1 {
			t.Fatalf("consumer %d collected %d events for %d jobs, want jobs+1", i, len(events), len(plan))
		}
		terminals := 0
		seen := make(map[string]bool, len(plan))
		for j, ev := range events {
			if ev.Seq != j+1 {
				t.Fatalf("consumer %d: event %d has seq %d", i, j, ev.Seq)
			}
			if ev.Type == EventBatch {
				terminals++
				continue
			}
			if !want[ev.Fingerprint] {
				t.Fatalf("consumer %d: unplanned job %s", i, ev.Fingerprint)
			}
			if seen[ev.Fingerprint] {
				t.Fatalf("consumer %d: job %s delivered twice", i, ev.Fingerprint)
			}
			seen[ev.Fingerprint] = true
		}
		if terminals != 1 || events[len(events)-1].Type != EventBatch {
			t.Fatalf("consumer %d: %d terminal events (last is %s), want exactly one, last",
				i, terminals, events[len(events)-1].Type)
		}
		if len(seen) != len(plan) {
			t.Fatalf("consumer %d: saw %d distinct jobs, want %d", i, len(seen), len(plan))
		}
	}

	// The downloaded results are the on-disk artifact, byte for byte.
	rc, err := c.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	downloaded := new(bytes.Buffer)
	if _, err := downloaded.ReadFrom(rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if !bytes.Equal(downloaded.Bytes(), resultsBytes(t, s.cfg.DataDir, st.ID)) {
		t.Fatal("downloaded results differ from the on-disk artifact")
	}

	// And that artifact is byte-identical to a direct internal/sweep run of
	// the same plan — the daemon added scheduling, streaming and storage, but
	// changed no result.
	eng := sweep.New(sweep.Config[testResult]{Run: protect(testRun), Workers: 4})
	var direct bytes.Buffer
	for _, k := range plan {
		rec := JobRecord{Fingerprint: k.Fingerprint(), Seed: k.Seed(), Key: k}
		res, runErr := eng.Get(k)
		if runErr != nil {
			rec.Status, rec.Error = JobFailed, runErr.Error()
		} else {
			payload, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			rec.Status, rec.Result = JobOK, payload
		}
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		direct.Write(append(line, '\n'))
	}
	if !bytes.Equal(downloaded.Bytes(), direct.Bytes()) {
		t.Fatalf("daemon results differ from a direct sweep run:\ndaemon:\n%s\ndirect:\n%s",
			downloaded.Bytes(), direct.Bytes())
	}
}
