// Package serve promotes the internal/sweep orchestration engine to a
// resident, multi-tenant service: the subsystem behind the sweepd daemon.
//
// A client POSTs a batch of job keys; the service dedupes them through the
// engine's fingerprint-keyed memo cache (across batches and tenants —
// every distinct simulation runs at most once per daemon), executes them
// on a supervised worker pool, streams per-job completion events over SSE,
// and persists three files per batch (manifest, streamed journal, final
// results) so a killed daemon resumes every in-flight batch at startup
// without resimulating completed jobs.
//
// Determinism contract: the results journal of a batch is a pure function
// of its deduplicated, canonically ordered key set. Submitting the same
// batch to a fresh daemon, resubmitting it to a warm one (pure cache
// hits), or resuming it after a mid-batch SIGKILL all yield byte-identical
// results files. Failures are part of the contract: a job that fails — a
// deliberate panic included — is recorded as failed with a deterministic
// error string, and takes down neither the daemon nor any other job.
//
// The package is simulator-agnostic like the engine underneath it: the
// result type is a type parameter and the job executor an injected
// function. cmd/sweepd binds it to internal/runner.
package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sweep"
)

// Config parameterizes a Service.
type Config[R any] struct {
	// Run executes one job (required). It is wrapped in a panic guard: a
	// panicking run fails that job with a deterministic error instead of
	// crashing the daemon.
	Run func(sweep.JobKey) (R, error)
	// DataDir is the persistent state directory (required).
	DataDir string
	// Workers bounds concurrent job executions (default GOMAXPROCS via
	// the engine).
	Workers int
	// Supervisor tunes the worker restart policy.
	Supervisor SupervisorConfig
	// Describe, when non-nil, condenses a successful result into the
	// summary carried by its SSE event.
	Describe func(R) *JobSummary
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Service is one resident sweep daemon: an engine, a store, a supervisor,
// and the batch registry. All methods are safe for concurrent use.
type Service[R any] struct {
	cfg   Config[R]
	store *Store
	eng   *sweep.Engine[R]
	sup   *Supervisor

	// epoch is this daemon life's boot counter (Store.BootEpoch), stamped
	// on every SSE event so reconnecting clients can detect that a restart
	// renumbered the history they were following. Immutable after New.
	epoch int64

	// reg is the service-level metrics registry (jobs, batches,
	// supervisor health). The registry type is single-threaded by design,
	// so every touch — registration, increments, snapshots — happens
	// under regMu.
	regMu       sync.Mutex
	reg         *metrics.Registry
	lastSnap    metrics.Snapshot
	jobsOK      *metrics.Counter
	jobsFailed  *metrics.Counter
	batchesIn   *metrics.Counter
	batchesDone *metrics.Counter

	mu      sync.Mutex
	batches map[string]*batch
	order   []string                   // batch IDs in creation order
	jobs    map[string]json.RawMessage // fingerprint → marshaled JobRecord
}

// New opens the data directory, resumes every stored batch, and starts
// the worker pool. Completed batches are reloaded as served results;
// incomplete ones are re-queued, with their journaled jobs replayed into
// the memo cache so only missing work re-runs.
func New[R any](cfg Config[R]) (*Service[R], error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("serve: Config.Run is required")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	epoch, err := store.BootEpoch()
	if err != nil {
		return nil, err
	}
	s := &Service[R]{
		cfg:     cfg,
		store:   store,
		epoch:   epoch,
		batches: make(map[string]*batch),
		jobs:    make(map[string]json.RawMessage),
	}
	//lint:ignore puretaint sweep.New stamps a wall-clock start for progress telemetry only; it never feeds result records
	s.eng = sweep.New(sweep.Config[R]{
		Workers: cfg.Workers,
		Run:     protect(cfg.Run),
	})
	if cfg.Supervisor.Workers <= 0 {
		cfg.Supervisor.Workers = cfg.Workers
	}
	s.sup = NewSupervisor(cfg.Supervisor)
	s.registerMetrics()
	if err := s.resume(); err != nil {
		return nil, err
	}
	s.sup.Start()
	return s, nil
}

// protect wraps the run function so a panicking job settles as a failed
// job. The error text is a pure function of the panic value: deterministic
// panics journal identically on every run.
func protect[R any](run func(sweep.JobKey) (R, error)) func(sweep.JobKey) (R, error) {
	return func(k sweep.JobKey) (res R, err error) {
		defer func() {
			if v := recover(); v != nil {
				var zero R
				res, err = zero, fmt.Errorf("%s", describePanic(v))
			}
		}()
		return run(k)
	}
}

// logf forwards to the configured logger.
func (s *Service[R]) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Close stops the worker pool (in-flight jobs finish; queued ones are
// dropped and re-created from manifests at next startup) and closes every
// batch journal.
func (s *Service[R]) Close() {
	s.sup.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.batches {
		b.closeJournal()
	}
}

// Epoch returns this daemon life's boot counter — the epoch stamped on
// every SSE event it emits.
func (s *Service[R]) Epoch() int64 { return s.epoch }

// Engine exposes the underlying sweep engine (tests, stats).
func (s *Service[R]) Engine() *sweep.Engine[R] { return s.eng }

// Supervisor exposes the worker supervisor (health, tests).
func (s *Service[R]) Supervisor() *Supervisor { return s.sup }
