package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is the service's on-disk state: one directory per batch under
// <dir>/batches, holding
//
//	manifest.json  — the batch plan, written before any job runs
//	journal.jsonl  — streamed completion-order records, flushed per record
//	results.jsonl  — canonical-order records, written once, atomically,
//	                 when the batch settles; its presence means "done"
//
// The split mirrors the durability story: the journal is the crash log (a
// SIGKILL loses at most a partial tail line, which replay tolerates), the
// results file is the deterministic artifact (byte-identical for a batch
// run fresh, served warm from the memo cache, or resumed after a crash).
// Neither file records wall time: everything persisted is a pure function
// of the job keys and their results.
type Store struct {
	dir string

	mu     sync.Mutex
	nextID int
}

// batchPrefix is the batch ID format: "b" + six digits, assigned in
// submission order and continued across restarts.
const batchPrefix = "b"

// OpenStore opens (creating if needed) the service data directory and
// scans it so newly assigned batch IDs continue after the highest on disk.
func OpenStore(dir string) (*Store, error) {
	st := &Store{dir: dir, nextID: 1}
	if err := os.MkdirAll(st.batchesDir(), 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening store: %w", err)
	}
	entries, err := os.ReadDir(st.batchesDir())
	if err != nil {
		return nil, fmt.Errorf("serve: scanning store: %w", err)
	}
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), batchPrefix+"%06d", &n); err == nil && n >= st.nextID {
			st.nextID = n + 1
		}
	}
	return st, nil
}

func (st *Store) batchesDir() string        { return filepath.Join(st.dir, "batches") }
func (st *Store) batchDir(id string) string { return filepath.Join(st.batchesDir(), id) }

// manifestPath etc. name the three per-batch files.
func (st *Store) manifestPath(id string) string {
	return filepath.Join(st.batchDir(id), "manifest.json")
}
func (st *Store) journalPath(id string) string {
	return filepath.Join(st.batchDir(id), "journal.jsonl")
}
func (st *Store) resultsPath(id string) string {
	return filepath.Join(st.batchDir(id), "results.jsonl")
}

// BootEpoch increments and persists the store's boot counter
// (<dir>/epoch), returning the new value. Each daemon life gets a distinct
// epoch; SSE events carry it so a client reconnecting across a restart can
// tell a genuine stream continuation from a rebuilt history (gap
// detection). A missing or corrupt file restarts the counter at 1 — epochs
// only need to differ across lives, not be gapless.
func (st *Store) BootEpoch() (int64, error) {
	path := filepath.Join(st.dir, "epoch")
	var epoch int64
	if b, err := os.ReadFile(path); err == nil {
		if v, perr := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64); perr == nil && v > 0 {
			epoch = v
		}
	}
	epoch++
	if err := atomicWrite(path, []byte(strconv.FormatInt(epoch, 10)+"\n")); err != nil {
		return 0, fmt.Errorf("serve: writing boot epoch: %w", err)
	}
	return epoch, nil
}

// NewBatchID reserves the next batch ID.
func (st *Store) NewBatchID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := fmt.Sprintf("%s%06d", batchPrefix, st.nextID)
	st.nextID++
	return id
}

// WriteManifest persists the batch plan atomically (tmp + rename), creating
// the batch directory. A manifest without a results file is the signature
// of an in-flight batch the daemon must resume at startup.
func (st *Store) WriteManifest(m Manifest) error {
	if err := os.MkdirAll(st.batchDir(m.ID), 0o755); err != nil {
		return fmt.Errorf("serve: batch dir %s: %w", m.ID, err)
	}
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("serve: manifest %s: %w", m.ID, err)
	}
	return atomicWrite(st.manifestPath(m.ID), append(b, '\n'))
}

// LoadManifests returns every stored batch manifest, sorted by ID — the
// deterministic resume order.
func (st *Store) LoadManifests() ([]Manifest, error) {
	entries, err := os.ReadDir(st.batchesDir())
	if err != nil {
		return nil, err
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), batchPrefix) {
			continue
		}
		b, err := os.ReadFile(st.manifestPath(e.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue // crashed between mkdir and manifest write: no plan, nothing to resume
			}
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil || m.ID != e.Name() {
			continue // torn manifest: unreadable plan, skip rather than guess
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// HasResults reports whether the batch has settled (its results file
// exists).
func (st *Store) HasResults(id string) bool {
	_, err := os.Stat(st.resultsPath(id))
	return err == nil
}

// OpenResults opens the batch's results journal for reading.
func (st *Store) OpenResults(id string) (io.ReadCloser, error) {
	return os.Open(st.resultsPath(id))
}

// WriteResults persists the canonical-order record set atomically. The
// bytes are a pure function of the records, so equal batches produce
// byte-identical files no matter how they were scheduled.
func (st *Store) WriteResults(id string, recs []JobRecord) error {
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("serve: results %s: %w", id, err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return atomicWrite(st.resultsPath(id), buf)
}

// atomicWrite lands the bytes under path via a temp file and rename, so a
// crash never leaves a half-written file where a complete one is expected.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// maxJournalLine bounds one journal record (matches the sweep engine's
// resume limit).
const maxJournalLine = 64 << 20

// ReadJournal replays a batch journal, returning every intact record in
// write (completion) order. Corrupt or truncated lines — the tail of a
// killed daemon — are skipped, never fatal; a missing journal is an empty
// batch. Duplicate fingerprints keep the first record, so a journal that
// accumulated duplicates across repeated crash/resume cycles replays to
// the same state.
func (st *Store) ReadJournal(id string) ([]JobRecord, error) {
	return readRecords(st.journalPath(id))
}

// ReadResults replays a settled batch's results journal (same tolerance
// rules as ReadJournal).
func (st *Store) ReadResults(id string) ([]JobRecord, error) {
	return readRecords(st.resultsPath(id))
}

func readRecords(path string) ([]JobRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), maxJournalLine)
	var out []JobRecord
	seen := make(map[string]bool)
	for sc.Scan() {
		var rec JobRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		// Distrust the stored fingerprint (same rule as engine resume): a
		// record from an older key schema must not be replayed under a
		// fingerprint its key no longer hashes to.
		if rec.Key.Fingerprint() != rec.Fingerprint || seen[rec.Fingerprint] {
			continue
		}
		seen[rec.Fingerprint] = true
		out = append(out, rec)
	}
	return out, sc.Err()
}

// OpenReplayReader opens the raw record stream that best describes the
// batch — the results journal once the batch settled, else the streamed
// journal — for feeding the sweep engine's Resume (successful records are
// sweep.Record-compatible). A batch with neither file reads as empty.
func (st *Store) OpenReplayReader(id string) (io.ReadCloser, error) {
	if st.HasResults(id) {
		return os.Open(st.resultsPath(id))
	}
	f, err := os.Open(st.journalPath(id))
	if os.IsNotExist(err) {
		return io.NopCloser(strings.NewReader("")), nil
	}
	return f, err
}

// BatchJournal is the streamed, append-only completion log of one batch.
// Append marshals one record per line and flushes it to the OS before
// returning, so a killed daemon can lose at most the line being written
// (the fsync tradeoff is documented on sweep.Config.Journal: process death
// loses nothing, host death may drop a tail that resume re-runs).
type BatchJournal struct {
	mu sync.Mutex
	f  *os.File
	bw *bufio.Writer
}

// OpenJournal opens (creating if needed) the batch journal for appending.
// A torn final line from a previous crash is terminated first so the next
// record starts clean.
func (st *Store) OpenJournal(id string) (*BatchJournal, error) {
	if err := os.MkdirAll(st.batchDir(id), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(st.journalPath(id), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if tail, err := lastByte(f); err != nil {
		f.Close()
		return nil, err
	} else if tail != 0 && tail != '\n' {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &BatchJournal{f: f, bw: bufio.NewWriter(f)}, nil
}

// lastByte returns the file's final byte (0 when empty).
func lastByte(f *os.File) (byte, error) {
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return 0, err
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, st.Size()-1); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Append writes one record and flushes it through to the OS.
func (j *BatchJournal) Append(rec JobRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.bw.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.bw.Flush()
}

// Close flushes and closes the journal file.
func (j *BatchJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
