package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mgpucompress/internal/sweep"
)

// Client talks to a running sweepd daemon. It is what the -server flag of
// cmd/reproduce and cmd/ablations wraps: submit batches, poll them to
// completion, download result journals, and execute single jobs remotely
// as a drop-in sweep-engine run function.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// PollInterval paces WaitBatch status polls (default 100ms).
	PollInterval time.Duration
}

func (c *Client) http_() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// decode reads one JSON response body, translating non-2xx statuses into
// errors carrying the server's message.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ae apiError
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("serve: %s: %s", resp.Status, ae.Error)
		}
		return fmt.Errorf("serve: %s", resp.Status)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

// Submit posts a batch and returns its initial status.
func (c *Client) Submit(req BatchRequest) (BatchStatus, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return BatchStatus{}, err
	}
	resp, err := c.http_().Post(c.url("/v1/batches"), "application/json", bytes.NewReader(b))
	if err != nil {
		return BatchStatus{}, err
	}
	var st BatchStatus
	return st, decode(resp, &st)
}

// Status fetches one batch's status.
func (c *Client) Status(id string) (BatchStatus, error) {
	resp, err := c.http_().Get(c.url("/v1/batches/" + id))
	if err != nil {
		return BatchStatus{}, err
	}
	var st BatchStatus
	return st, decode(resp, &st)
}

// Wait polls the batch until it leaves StateRunning. OnProgress, when
// non-nil, observes every polled status (progress lines).
func (c *Client) Wait(id string, onProgress func(BatchStatus)) (BatchStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		if onProgress != nil {
			onProgress(st)
		}
		if st.State != StateRunning {
			return st, nil
		}
		//lint:ignore wallclock client-side poll pacing against a remote daemon; result bytes come from the server's journal
		time.Sleep(interval)
	}
}

// Results streams the settled batch's results journal (JSONL). The bytes
// are the daemon's deterministic artifact: feed them to
// sweep.Engine.Resume (or runner.Sweep.Resume) to serve every successful
// job from the local cache.
func (c *Client) Results(id string) (io.ReadCloser, error) {
	resp, err := c.http_().Get(c.url("/v1/batches/" + id + "/results"))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var ae apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("serve: %s: %s", resp.Status, ae.Error)
		}
		return nil, fmt.Errorf("serve: %s", resp.Status)
	}
	return resp.Body, nil
}

// Events streams a batch's SSE events, calling fn per event until the
// stream ends (terminal batch event), fn returns false, or the connection
// drops. after and epoch form the resume watermark — the Epoch and Seq of
// the last event previously observed; pass (0, 0) to read from the start.
//
// On reconnect the daemon compares the watermark against its current
// history: if it still names a point in the stream (same daemon life), fn
// sees only events after it. If not — the daemon restarted and rebuilt its
// history under a new epoch, or the watermark is beyond anything recorded —
// the first event fn sees is an EventGap frame (Since = the stale
// watermark) followed by the full renumbered history, so a consumer can
// reset its state instead of mistaking the replay for new progress.
func (c *Client) Events(id string, epoch int64, after int, fn func(Event) bool) error {
	req, err := http.NewRequest(http.MethodGet, c.url("/v1/batches/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	if epoch != 0 || after != 0 {
		req.Header.Set("Last-Event-ID", Watermark(epoch, after))
	}
	resp, err := c.http_().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("serve: %s: %s", resp.Status, ae.Error)
		}
		return fmt.Errorf("serve: %s", resp.Status)
	}
	return ParseSSE(resp.Body, fn)
}

// Job fetches one settled job's record by fingerprint.
func (c *Client) Job(fingerprint string) (JobRecord, error) {
	resp, err := c.http_().Get(c.url("/v1/jobs/" + fingerprint))
	if err != nil {
		return JobRecord{}, err
	}
	var rec JobRecord
	return rec, decode(resp, &rec)
}

// Health fetches the daemon health surface.
func (c *Client) Health() (Health, error) {
	resp, err := c.http_().Get(c.url("/v1/healthz"))
	if err != nil {
		return Health{}, err
	}
	var h Health
	return h, decode(resp, &h)
}

// RunJob executes one job on the daemon: a single-key batch, polled to
// completion, with the settled record's payload returned. It has the shape
// a sweep engine run function needs, so a local engine can transparently
// execute against a remote daemon — the daemon's memo cache makes repeats
// free. A failed job surfaces as an error carrying the daemon's
// deterministic message.
func (c *Client) RunJob(key sweep.JobKey) (json.RawMessage, error) {
	st, err := c.Submit(BatchRequest{Keys: []sweep.JobKey{key}})
	if err != nil {
		return nil, err
	}
	if st, err = c.Wait(st.ID, nil); err != nil {
		return nil, err
	}
	if st.State == StateError {
		return nil, fmt.Errorf("serve: batch %s: %s", st.ID, st.Error)
	}
	rec, err := c.Job(key.Fingerprint())
	if err != nil {
		return nil, err
	}
	if rec.Status != JobOK {
		return nil, fmt.Errorf("serve: job %s: %s", rec.Fingerprint, rec.Error)
	}
	return rec.Result, nil
}
