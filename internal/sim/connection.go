package sim

import "fmt"

// Connection moves messages from a source port to a destination port with
// some timing model. The inter-GPU bus fabric (internal/fabric) implements
// this interface with shared-bus arbitration; DirectConnection below models
// the wide on-die links inside a GPU.
type Connection interface {
	// Send starts transmitting m from m.Meta().Src toward m.Meta().Dst.
	// It reports false if the connection cannot take the message now.
	Send(now Time, m Msg) bool
	// NotifyBufferFree is called by a destination port when buffer space
	// frees up, letting the connection resume stalled deliveries.
	NotifyBufferFree(now Time, port *Port)
	// Plug attaches a port to this connection.
	Plug(p *Port)
	// Engine returns the event engine driving this connection. Ports use it
	// to reach the run's message-ID counter.
	Engine() *Engine
}

// deliverEvent delivers a message into its destination port at a scheduled
// time, used by DirectConnection.
type deliverEvent struct {
	EventBase
	msg Msg
}

type directDeliverer struct{ c *DirectConnection }

func (d directDeliverer) Handle(e Event) error {
	evt := e.(deliverEvent)
	dst := evt.msg.Meta().Dst
	if !dst.CanAccept(evt.msg.Meta().Bytes) {
		// Destination full: park the message; resume on NotifyBufferFree.
		d.c.parked[dst] = append(d.c.parked[dst], evt.msg)
		return nil
	}
	dst.Deliver(d.c.engine.Now(), evt.msg)
	return nil
}

// DirectConnection is a point-to-multipoint link with a fixed latency and
// unlimited bandwidth. It models on-die interconnect inside a GPU, which
// the paper treats as abundant relative to the inter-GPU fabric.
type DirectConnection struct {
	name    string
	engine  *Engine
	latency Time
	ports   map[*Port]bool
	parked  map[*Port][]Msg
}

// NewDirectConnection creates a direct connection with the given one-way
// latency in cycles.
func NewDirectConnection(name string, engine *Engine, latency Time) *DirectConnection {
	return &DirectConnection{
		name:    name,
		engine:  engine,
		latency: latency,
		ports:   make(map[*Port]bool),
		parked:  make(map[*Port][]Msg),
	}
}

// Plug attaches a port.
func (c *DirectConnection) Plug(p *Port) {
	c.ports[p] = true
	p.SetConnection(c)
}

// Engine returns the event engine driving this connection.
func (c *DirectConnection) Engine() *Engine { return c.engine }

// Send schedules delivery after the connection latency. A DirectConnection
// never rejects a send; back-pressure is applied at the destination buffer
// (messages park until space frees).
func (c *DirectConnection) Send(now Time, m Msg) bool {
	dst := m.Meta().Dst
	if dst == nil {
		panic(fmt.Sprintf("sim: %s: message %d has no destination", c.name, m.Meta().ID))
	}
	if !c.ports[dst] {
		panic(fmt.Sprintf("sim: %s: destination port %s is not plugged in", c.name, dst.Name()))
	}
	m.Meta().SendTime = now
	c.engine.Schedule(deliverEvent{
		EventBase: NewEventBase(now+c.latency, directDeliverer{c}),
		msg:       m,
	})
	return true
}

// NotifyBufferFree drains parked messages for the port in FIFO order. The
// parked map is re-read every iteration because Deliver can re-enter this
// method via the receiving component.
func (c *DirectConnection) NotifyBufferFree(now Time, port *Port) {
	for {
		queue := c.parked[port]
		if len(queue) == 0 {
			delete(c.parked, port)
			return
		}
		m := queue[0]
		if !port.CanAccept(m.Meta().Bytes) {
			return
		}
		c.parked[port] = queue[1:]
		port.Deliver(now, m)
	}
}
