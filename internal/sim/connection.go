package sim

import "fmt"

// Connection moves messages from a source port to a destination port with
// some timing model. The inter-GPU bus fabric (internal/fabric) implements
// this interface with shared-bus arbitration; DirectConnection below models
// the wide on-die links inside a GPU. A connection's latency is a property
// of its construction, and every connection lives in exactly one partition —
// the one all of its ports' components belong to. That locality is what lets
// the window scheduler run partitions concurrently: a connection's deliveries
// never leave its partition, so only Remote links carry cross-window traffic.
type Connection interface {
	// Send starts transmitting m from m.Meta().Src toward m.Meta().Dst.
	// It reports false if the connection cannot take the message now.
	Send(now Time, m Msg) bool
	// NotifyBufferFree is called by a destination port when buffer space
	// frees up, letting the connection resume stalled deliveries.
	NotifyBufferFree(now Time, port *Port)
	// Plug attaches a port to this connection.
	Plug(p *Port)
	// Partition returns the partition this connection schedules on. Ports
	// use it to reach the run's message-ID counter.
	Partition() *Partition
}

// deliverEvent delivers a message into its destination port at a scheduled
// time, used by DirectConnection.
type deliverEvent struct {
	EventBase
	msg Msg
}

type directDeliverer struct{ c *DirectConnection }

func (d directDeliverer) Handle(e Event) error {
	evt := e.(deliverEvent)
	dst := evt.msg.Meta().Dst
	if !dst.CanAccept(evt.msg.Meta().Bytes) {
		// Destination full: park the message; resume on NotifyBufferFree.
		d.c.parked[dst] = append(d.c.parked[dst], evt.msg)
		return nil
	}
	dst.Deliver(d.c.part.Now(), evt.msg)
	return nil
}

// DirectConnection is a point-to-multipoint link with a fixed latency and
// unlimited bandwidth. It models on-die interconnect inside a GPU, which
// the paper treats as abundant relative to the inter-GPU fabric.
type DirectConnection struct {
	name    string
	part    *Partition
	latency Time
	ports   map[*Port]bool
	parked  map[*Port][]Msg
}

// NewDirectConnection creates a direct connection on partition p with the
// given one-way latency in cycles, fixed for the connection's lifetime.
func NewDirectConnection(name string, p *Partition, latency Time) *DirectConnection {
	return &DirectConnection{
		name:    name,
		part:    p,
		latency: latency,
		ports:   make(map[*Port]bool),
		parked:  make(map[*Port][]Msg),
	}
}

// Plug attaches a port.
func (c *DirectConnection) Plug(p *Port) {
	c.ports[p] = true
	p.SetConnection(c)
}

// Partition returns the partition this connection schedules on.
func (c *DirectConnection) Partition() *Partition { return c.part }

// Latency returns the connection's fixed one-way latency.
func (c *DirectConnection) Latency() Time { return c.latency }

// Send schedules delivery after the connection latency. A DirectConnection
// never rejects a send; back-pressure is applied at the destination buffer
// (messages park until space frees).
func (c *DirectConnection) Send(now Time, m Msg) bool {
	dst := m.Meta().Dst
	if dst == nil {
		panic(fmt.Sprintf("sim: %s: message %d has no destination", c.name, m.Meta().ID))
	}
	if !c.ports[dst] {
		panic(fmt.Sprintf("sim: %s: destination port %s is not plugged in", c.name, dst.Name()))
	}
	m.Meta().SendTime = now
	c.part.Schedule(deliverEvent{
		EventBase: NewEventBase(now+c.latency, directDeliverer{c}),
		msg:       m,
	})
	return true
}

// NotifyBufferFree drains parked messages for the port in FIFO order. The
// parked map is re-read every iteration because Deliver can re-enter this
// method via the receiving component.
func (c *DirectConnection) NotifyBufferFree(now Time, port *Port) {
	for {
		queue := c.parked[port]
		if len(queue) == 0 {
			delete(c.parked, port)
			return
		}
		m := queue[0]
		if !port.CanAccept(m.Meta().Bytes) {
			return
		}
		c.parked[port] = queue[1:]
		port.Deliver(now, m)
	}
}
