package sim

// remoteEntry is one event parked in a link's outbox until the next window
// barrier.
type remoteEntry struct {
	time Time
	evt  Event
}

// Remote is a scheduling channel between two partitions, created with
// Engine.Link. During a window the source side appends events to a private
// outbox (the source partition's worker is the only writer); at the barrier
// the engine drains every outbox into the destination queue in link-creation
// order, where the destination assigns sequence numbers. Because the
// declared latency is at least the engine's lookahead window, drained events
// always land at or after the barrier — never in a partition's past.
type Remote struct {
	src     *Partition
	dst     *Partition
	latency Time
	buf     []remoteEntry
}

// MinLatency returns the link's declared minimum latency.
func (r *Remote) MinLatency() Time { return r.latency }

// Dst returns the destination partition.
func (r *Remote) Dst() *Partition { return r.dst }

// Schedule sends evt across the link. The event's time must be at least the
// source partition's current time plus the link latency — that floor is what
// makes the conservative window safe, so violating it panics. Local links
// (src == dst) and calls from host code between runs bypass the outbox and
// enqueue directly on the destination.
func (r *Remote) Schedule(evt Event) {
	t := evt.Time()
	if min := satAdd(r.src.now, r.latency); t < min {
		panic("sim: remote event scheduled under the link's latency floor")
	}
	if r.src == r.dst || !r.src.eng.running {
		r.dst.Schedule(evt)
		return
	}
	r.buf = append(r.buf, remoteEntry{time: t, evt: evt})
}

// satAdd adds two times, saturating at TimeInf.
func satAdd(a, b Time) Time {
	if b >= TimeInf-a {
		return TimeInf
	}
	return a + b
}
