package sim

// remoteEntry is one event parked in a link's outbox until the next window
// barrier, carrying the sequence number its source partition stamped at
// emission time.
type remoteEntry struct {
	time Time
	seq  uint64
	evt  Event
}

// Remote is a scheduling channel between two partitions, created with
// Engine.Link. During a window the source side appends events to a private
// outbox (the source partition's worker is the only writer); at the barrier
// the engine merges every dirty outbox into the destination queue and
// recycles the buffer through the source partition's pool. Entries carry
// sequence numbers stamped by the source at emission time, so the
// destination's (time, seq) dispatch order is a pure function of simulation
// content — independent of window placement, merge order, and core count.
// Because the declared latency keeps emissions at or past the window limit,
// merged events never land in a partition's past.
type Remote struct {
	src     *Partition
	dst     *Partition
	latency Time
	buf     []remoteEntry

	// nextSend is the link's next-send bound: a promise by the owning
	// component that no event with a time below it will be scheduled on this
	// link. The window scheduler folds it into the adaptive limit, so raising
	// it widens windows beyond what the source's head event alone allows.
	nextSend Time
}

// MinLatency returns the link's declared minimum latency.
func (r *Remote) MinLatency() Time { return r.latency }

// Dst returns the destination partition.
func (r *Remote) Dst() *Partition { return r.dst }

// SetNextSend raises the link's next-send bound to t: the caller promises no
// event with a time below t will ever be scheduled on this link. The promise
// must follow from state the source component has already committed — it may
// not be invalidated by anything that could still arrive (a fabric bus that
// arbitrates nothing while a transfer occupies the wire can promise its busy
// horizon; a component that merely has an empty queue cannot, because a
// same-cycle delivery could refill it). Lowering is ignored: bounds only
// ratchet up, and Schedule panics on an emission that breaks one.
func (r *Remote) SetNextSend(t Time) {
	if t > r.nextSend {
		r.nextSend = t
	}
}

// Schedule sends evt across the link. The event's time must be at least the
// source partition's current time plus the link latency — that floor is what
// makes the conservative window safe, so violating it panics. Local links
// (src == dst) and calls from host code between runs bypass the outbox and
// enqueue directly on the destination.
//
// When the source is running alone in a dynamic window, each emission
// collapses the source's window limit to the earliest time the recipient's
// reaction could travel back through the link graph, so the lone partition
// never dispatches anything its own traffic might retroactively disturb.
func (r *Remote) Schedule(evt Event) {
	t := evt.Time()
	if min := satAdd(r.src.now, r.latency); t < min {
		panic("sim: remote event scheduled under the link's latency floor")
	}
	src := r.src
	if src == r.dst || !src.eng.running {
		r.dst.Schedule(evt)
		return
	}
	if t < r.nextSend {
		panic("sim: remote event scheduled under the link's next-send bound")
	}
	if r.buf == nil {
		r.buf = src.takeBuf()
		src.dirty = append(src.dirty, r)
	}
	r.buf = append(r.buf, remoteEntry{time: t, seq: src.nextSeq(), evt: evt})
	if src.dynamic {
		if back := satAdd(t, src.eng.dist[r.dst.idx][src.idx]); back < src.curLimit {
			src.curLimit = back
		}
	}
}

// satAdd adds two times, saturating at TimeInf.
func satAdd(a, b Time) Time {
	if b >= TimeInf-a {
		return TimeInf
	}
	return a + b
}
