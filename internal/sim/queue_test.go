package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// Tests pinning the hand-rolled 4-ary event queue and the allocation-free
// ScheduleTick path to the semantics of the container/heap implementation
// they replaced.

// TestEventQueuePopsSortedOrder: pushing random (time, seq) entries and
// popping them all yields exactly the (time, seq) sort — the total order the
// engine's determinism rests on.
func TestEventQueuePopsSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		var q eventQueue
		entries := make([]queuedEvent, 0, n)
		for seq := 0; seq < n; seq++ {
			qe := queuedEvent{time: Time(rng.Intn(32)), seq: uint64(seq)}
			entries = append(entries, qe)
			q.push(qe)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].less(entries[j]) })
		for i, want := range entries {
			got := q.pop()
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("trial %d: pop %d = (%d,%d), want (%d,%d)",
					trial, i, got.time, got.seq, want.time, want.seq)
			}
		}
		if len(q) != 0 {
			t.Fatalf("trial %d: queue not drained", trial)
		}
	}
}

// TestEventQueueInterleavedPushPop exercises the heap under the engine's
// actual access pattern: pops interleaved with pushes of later times.
func TestEventQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var q eventQueue
	seq := uint64(0)
	now := Time(0)
	var last queuedEvent
	popped := 0
	for step := 0; step < 10000; step++ {
		if len(q) == 0 || rng.Intn(3) > 0 {
			seq++
			q.push(queuedEvent{time: now + Time(rng.Intn(16)), seq: seq})
			continue
		}
		got := q.pop()
		if popped > 0 && got.less(last) {
			t.Fatalf("step %d: pop (%d,%d) after (%d,%d)", step, got.time, got.seq, last.time, last.seq)
		}
		if got.time < now {
			t.Fatalf("step %d: time went backwards", step)
		}
		now = got.time
		last = got
		popped++
	}
}

// TestScheduleTickInterleavesWithSchedule: lightweight ticks and boxed
// events share one (time, seq) order, so mixing the two APIs preserves FIFO
// at equal timestamps.
func TestScheduleTickInterleavesWithSchedule(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var order []int
	mk := func(id int) Handler {
		return handlerFunc(func(Event) error {
			order = append(order, id)
			return nil
		})
	}
	p.ScheduleTick(3, mk(0))
	p.Schedule(TickEvent{EventBase: NewEventBase(3, mk(1))})
	p.ScheduleTick(1, mk(2))
	p.Schedule(TickEvent{EventBase: NewEventBase(3, mk(3))})
	p.ScheduleTick(3, mk(4))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.EventCount() != 5 {
		t.Fatalf("EventCount = %d, want 5", e.EventCount())
	}
}

// TestScheduleTickEventCarriesTime: the reusable tick event reports the
// scheduled time of each dispatch, even when one handler has several ticks
// in flight.
func TestScheduleTickEventCarriesTime(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var times []Time
	h := handlerFunc(func(ev Event) error {
		times = append(times, ev.Time())
		if _, ok := ev.(*TickEvent); !ok {
			t.Fatalf("tick dispatched as %T, want *TickEvent", ev)
		}
		return nil
	})
	for _, tm := range []Time{7, 2, 2, 9} {
		p.ScheduleTick(tm, h)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{2, 2, 7, 9}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

// TestScheduleTickInPastPanics mirrors the Schedule contract.
func TestScheduleTickInPastPanics(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	p.ScheduleTick(10, handlerFunc(func(Event) error { return nil }))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("scheduling a tick in the past did not panic")
		}
	}()
	p.ScheduleTick(5, handlerFunc(func(Event) error { return nil }))
}

// TestRunUntilLeavesTickQueued: the peek-based deadline check must also hold
// for lightweight ticks.
func TestRunUntilLeavesTickQueued(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var fired []Time
	h := handlerFunc(func(ev Event) error {
		fired = append(fired, ev.Time())
		return nil
	})
	p.ScheduleTick(5, h)
	p.ScheduleTick(15, h)
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || e.Pending() != 1 {
		t.Fatalf("fired %v pending %d, want 1 event fired and 1 pending", fired, e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 15 {
		t.Fatalf("fired = %v after resume", fired)
	}
}

// BenchmarkEngineScheduleTickChurn measures the lightweight tick path —
// schedule and dispatch with the engine-owned reusable event. Must be
// 0 allocs/op in steady state.
func BenchmarkEngineScheduleTickChurn(b *testing.B) {
	e := NewEngine()
	p := e.Partition(0)
	h := handlerFunc(func(Event) error { return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScheduleTick(e.Now()+Time(i%64), h)
		if i%1024 == 1023 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineDeepQueueChurn keeps the queue at a constant 4096 pending
// entries (every handled tick re-schedules one) and measures dispatch in
// the heap's O(log n) regime. Must be 0 allocs/op in steady state.
func BenchmarkEngineDeepQueueChurn(b *testing.B) {
	e := NewEngine()
	p := e.Partition(0)
	rng := rand.New(rand.NewSource(8))
	var h handlerFunc
	h = func(ev Event) error {
		p.ScheduleTick(ev.Time()+1+Time(rng.Intn(1024)), h)
		return nil
	}
	const depth = 4096
	for i := 0; i < depth; i++ {
		p.ScheduleTick(1+Time(rng.Intn(1024)), h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunUntil(p.queue[0].time); err != nil {
			b.Fatal(err)
		}
	}
}
