package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

type recordingHandler struct {
	times []Time
	err   error
}

func (h *recordingHandler) Handle(e Event) error {
	h.times = append(h.times, e.Time())
	return h.err
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	h := &recordingHandler{}
	for _, tm := range []Time{5, 1, 9, 3, 3, 7, 0} {
		p.Schedule(TickEvent{EventBase: NewEventBase(tm, h)})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 1, 3, 3, 5, 7, 9}
	if len(h.times) != len(want) {
		t.Fatalf("handled %d events, want %d", len(h.times), len(want))
	}
	for i, tm := range want {
		if h.times[i] != tm {
			t.Errorf("event %d at %d, want %d", i, h.times[i], tm)
		}
	}
	if e.Now() != 9 {
		t.Errorf("Now() = %d, want 9", e.Now())
	}
}

func TestEngineSameTimeEventsKeepScheduleOrder(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var order []int
	mk := func(id int) Handler {
		return handlerFunc(func(Event) error {
			order = append(order, id)
			return nil
		})
	}
	for i := 0; i < 10; i++ {
		p.Schedule(TickEvent{EventBase: NewEventBase(4, mk(i))})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order %v not FIFO at same timestamp", order)
		}
	}
}

type handlerFunc func(Event) error

func (f handlerFunc) Handle(e Event) error { return f(e) }

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	h := &recordingHandler{}
	p.Schedule(TickEvent{EventBase: NewEventBase(10, h)})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	p.Schedule(TickEvent{EventBase: NewEventBase(5, h)})
}

func TestEnginePropagatesHandlerError(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	h := &recordingHandler{err: errors.New("boom")}
	p.Schedule(TickEvent{EventBase: NewEventBase(1, h)})
	if err := e.Run(); err == nil {
		t.Error("Run did not propagate handler error")
	}
}

func TestEnginePauseStopsDispatch(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var count int
	h := handlerFunc(func(Event) error {
		count++
		p.Pause()
		return nil
	})
	p.Schedule(TickEvent{EventBase: NewEventBase(1, h)})
	p.Schedule(TickEvent{EventBase: NewEventBase(2, h)})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("handled %d events before pause, want 1", count)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("handled %d events total, want 2", count)
	}
}

func TestEngineRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	h := &recordingHandler{}
	for _, tm := range []Time{1, 5, 10, 15} {
		p.Schedule(TickEvent{EventBase: NewEventBase(tm, h)})
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(h.times) != 3 {
		t.Fatalf("handled %d events by t=10, want 3", len(h.times))
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.times) != 4 {
		t.Fatalf("handled %d events after resume, want 4", len(h.times))
	}
}

// Property: for any set of event times, the engine dispatches them in
// non-decreasing order and handles exactly as many as scheduled.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		p := e.Partition(0)
		h := &recordingHandler{}
		for _, r := range raw {
			p.Schedule(TickEvent{EventBase: NewEventBase(Time(r), h)})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(h.times) != len(raw) {
			return false
		}
		for i := 1; i < len(h.times); i++ {
			if h.times[i] < h.times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTickerCoalescesDuplicateRequests(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(p, handlerFunc(func(ev Event) error {
		ticks = append(ticks, ev.Time())
		return nil
	}))
	tk.TickLater(0)
	tk.TickLater(0)
	tk.TickLater(0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 1 || ticks[0] != 1 {
		t.Fatalf("ticks = %v, want exactly [1]", ticks)
	}
}

func TestTickerEarlierRequestSupersedesLater(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var ticks []Time
	tk := NewTicker(p, handlerFunc(func(ev Event) error {
		ticks = append(ticks, ev.Time())
		return nil
	}))
	tk.TickAt(10)
	tk.TickAt(3) // should win
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 1 || ticks[0] != 3 {
		t.Fatalf("ticks = %v, want exactly [3]", ticks)
	}
}

func TestTickerRescheduleFromHandler(t *testing.T) {
	e := NewEngine()
	p := e.Partition(0)
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(p, handlerFunc(func(ev Event) error {
		ticks = append(ticks, ev.Time())
		if len(ticks) < 5 {
			tk.TickLater(ev.Time())
		}
		return nil
	}))
	tk.TickAt(1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{1, 2, 3, 4, 5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// Property: under random interleavings of TickAt requests issued from inside
// and outside handlers, the ticker never fires twice at one timestamp.
func TestTickerNeverDoubleFiresProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		e := NewEngine()
		p := e.Partition(0)
		fired := map[Time]int{}
		var tk *Ticker
		tk = NewTicker(p, handlerFunc(func(ev Event) error {
			fired[ev.Time()]++
			if rng.Intn(2) == 0 {
				tk.TickAt(ev.Time() + Time(rng.Intn(5)+1))
			}
			return nil
		}))
		for i := 0; i < 20; i++ {
			tk.TickAt(e.Now() + Time(rng.Intn(50)+1))
			if err := e.RunUntil(e.Now() + Time(rng.Intn(60))); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for tm, n := range fired {
			if n > 1 {
				t.Fatalf("trial %d: ticker fired %d times at t=%d", trial, n, tm)
			}
		}
	}
}

// BenchmarkEngineThroughput measures raw event dispatch rate — the number
// the whole simulator's wall-clock cost scales with.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	p := e.Partition(0)
	h := handlerFunc(func(Event) error { return nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Schedule(TickEvent{EventBase: NewEventBase(e.Now()+Time(i%64), h)})
		if i%1024 == 1023 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
