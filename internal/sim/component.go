package sim

// Component is a hardware block in the simulated system. Components own
// ports and react to events (including ticks) scheduled on the engine.
type Component interface {
	Handler
	// Name returns the hierarchical name of the component, e.g.
	// "GPU1.L2_3".
	Name() string
	// NotifyRecv is called by a port when a message becomes available on
	// it. Implementations typically request a tick.
	NotifyRecv(now Time, port *Port)
	// NotifyPortFree is called by a connection when a previously-full
	// output path can accept traffic again.
	NotifyPortFree(now Time, port *Port)
}

// ComponentBase carries the name plumbing shared by all components.
type ComponentBase struct {
	name string
}

// NewComponentBase creates a ComponentBase with the given name.
func NewComponentBase(name string) ComponentBase {
	return ComponentBase{name: name}
}

// Name returns the component name.
func (c *ComponentBase) Name() string { return c.name }

// TickEvent asks a ticking component to make progress at a certain cycle.
// Ticks dispatched through Partition.ScheduleTick arrive as a *TickEvent
// that the partition reuses across dispatches; handlers must read what they
// need
// (typically just Time) during Handle and not retain the pointer.
type TickEvent struct {
	EventBase
}

// Ticker schedules ticks for a component, coalescing duplicate requests so
// each component runs at most once per cycle. Embed one per component and
// call TickLater whenever there may be work to do.
type Ticker struct {
	Part      *Partition
	Handler   Handler
	Freq      Time // cycles between ticks; 1 = every cycle
	nextAsked Time
	hasAsked  bool
}

// NewTicker creates a Ticker driving handler h on partition p.
func NewTicker(p *Partition, h Handler) *Ticker {
	return &Ticker{Part: p, Handler: h, Freq: 1}
}

// TickLater schedules a tick for the next cycle if one is not already
// pending.
func (t *Ticker) TickLater(now Time) {
	t.TickAt(now + t.Freq)
}

// TickNow schedules a tick for the current cycle (used when reacting to a
// delivery that happened this cycle).
func (t *Ticker) TickNow(now Time) {
	t.TickAt(now)
}

// TickAt schedules a tick at an absolute cycle, unless an earlier or equal
// tick is already pending.
func (t *Ticker) TickAt(when Time) {
	if t.hasAsked && t.nextAsked <= when {
		return
	}
	t.hasAsked = true
	t.nextAsked = when
	// tickerTrampoline is a single-pointer struct, so converting it to
	// Handler is a direct interface — together with ScheduleTick's reusable
	// event this makes a tick request allocation-free.
	t.Part.ScheduleTick(when, tickerTrampoline{t})
}

// tickerTrampoline filters stale tick events: only the event matching the
// live request fires the handler, and the pending flag is cleared first so
// the handler can request the next tick from inside Handle.
type tickerTrampoline struct{ t *Ticker }

func (tt tickerTrampoline) Handle(e Event) error {
	if !tt.t.hasAsked || tt.t.nextAsked != e.Time() {
		return nil // superseded or duplicate request; the live one handles it
	}
	tt.t.hasAsked = false
	return tt.t.Handler.Handle(e)
}
