package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mgpucompress/internal/metrics"
)

// chatty is a two-partition ping-pong component: each arrival mixes local
// state and sends the ball back over the link after the given think time.
type chatty struct {
	part  *Partition
	out   *Remote
	peer  *chatty
	left  int
	think Time
	seen  []Time
}

func (c *chatty) Handle(e Event) error {
	c.seen = append(c.seen, e.Time())
	if c.left == 0 {
		return nil
	}
	c.left--
	t := e.Time() + c.out.MinLatency() + c.think
	c.out.Schedule(TickEvent{EventBase: NewEventBase(t, c.peer)})
	return nil
}

// newPingPong wires two partitions with opposing links of the given latency.
func newPingPong(cores int, latency, think Time, rounds int, opts ...Option) (*Engine, *chatty, *chatty) {
	e := NewEngine(append([]Option{WithPartitions(2), WithCores(cores)}, opts...)...)
	a := &chatty{part: e.Partition(0), left: rounds, think: think}
	b := &chatty{part: e.Partition(1), left: rounds, think: think}
	a.out = e.Link(a.part, b.part, latency)
	b.out = e.Link(b.part, a.part, latency)
	a.peer, b.peer = b, a
	a.part.Schedule(TickEvent{EventBase: NewEventBase(0, a)})
	return e, a, b
}

func windowSnapshot(e *Engine) metrics.Snapshot {
	reg := metrics.NewRegistry()
	e.RegisterMetrics(reg, "sim")
	return reg.Snapshot()
}

func snapshotJSON(t *testing.T, s metrics.Snapshot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestWindowTelemetryCounts checks the window-scheduler counters on a run
// whose structure is known exactly: windows splits into barrier and serial
// windows, every cross message is counted, and the events-per-window
// distribution covers every handled event.
func TestWindowTelemetryCounts(t *testing.T) {
	e, a, b := newPingPong(1, 3, 10, 8)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := windowSnapshot(e)
	windows := snap.Value("sim/windows")
	serial := snap.Value("sim/serial_fallback_windows")
	barrier := snap.Value("sim/barrier_spins")
	if windows == 0 {
		t.Fatal("no windows recorded")
	}
	if serial+barrier != windows {
		t.Errorf("serial %v + barrier %v != windows %v", serial, barrier, windows)
	}
	// A ping-pong never has both partitions active: every window is serial.
	if barrier != 0 {
		t.Errorf("ping-pong recorded %v barrier windows, want 0", barrier)
	}
	if got, want := snap.Value("sim/remote_msgs"), float64(16); got != want {
		t.Errorf("remote_msgs = %v, want %v", got, want)
	}
	ev, ok := snap.Get("sim/events_per_window")
	if !ok || ev.Dist == nil {
		t.Fatal("sim/events_per_window distribution missing")
	}
	if got, want := ev.Dist.Sum, float64(len(a.seen)+len(b.seen)); got != want {
		t.Errorf("events_per_window sum = %v, want %v (all handled events)", got, want)
	}
	if ev.Dist.Count != uint64(windows) {
		t.Errorf("events_per_window count = %d, want %v windows", ev.Dist.Count, windows)
	}
}

// TestWindowTelemetryStableAcrossCoresAndPolicy locks the byte-stability of
// the scheduler telemetry: the rendered snapshot must be identical for any
// worker count, and — window counters aside — the simulation metrics must
// be identical between adaptive and fixed window policies.
func TestWindowTelemetryStableAcrossCoresAndPolicy(t *testing.T) {
	run := func(cores int, opts ...Option) (metrics.Snapshot, []Time) {
		e, a, _ := newPingPong(cores, 3, 10, 8, opts...)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return windowSnapshot(e), a.seen
	}
	ref, refSeen := run(1)
	refText := snapshotJSON(t, ref)
	for _, cores := range []int{2, 8} {
		snap, seen := run(cores)
		if got := snapshotJSON(t, snap); got != refText {
			t.Errorf("cores=%d: snapshot diverged:\n%s\n--- want ---\n%s", cores, got, refText)
		}
		if len(seen) != len(refSeen) {
			t.Errorf("cores=%d: handled %d events, want %d", cores, len(seen), len(refSeen))
		}
	}

	// Fixed lookahead must not change any non-scheduler metric or the
	// dispatched event stream.
	fixed, fixedSeen := run(1, WithLookahead(3))
	for _, path := range []string{"sim/cycles", "sim/events_handled", "sim/events_scheduled", "sim/remote_msgs"} {
		if got, want := fixed.Value(path), ref.Value(path); got != want {
			t.Errorf("fixed lookahead changed %s: %v != %v", path, got, want)
		}
	}
	if fmt.Sprint(fixedSeen) != fmt.Sprint(refSeen) {
		t.Errorf("fixed lookahead dispatched %v, adaptive %v", fixedSeen, refSeen)
	}
}

// TestAdaptiveWindowsNeverExceedFixed pins the widening direction: the
// adaptive scheduler must never cross more barriers than the fixed
// baseline on the same simulation.
func TestAdaptiveWindowsNeverExceedFixed(t *testing.T) {
	eA, _, _ := newPingPong(1, 3, 50, 20)
	if err := eA.Run(); err != nil {
		t.Fatal(err)
	}
	eF, _, _ := newPingPong(1, 3, 50, 20, WithLookahead(3))
	if err := eF.Run(); err != nil {
		t.Fatal(err)
	}
	wa := windowSnapshot(eA).Value("sim/windows")
	wf := windowSnapshot(eF).Value("sim/windows")
	if wa == 0 || wf == 0 {
		t.Fatal("expected nonzero window counts")
	}
	if wa > wf {
		t.Errorf("adaptive windows %v > fixed windows %v", wa, wf)
	}
}

// localChain schedules a dense run of local events, then stops.
type localChain struct {
	part *Partition
	left int
}

func (c *localChain) Handle(e Event) error {
	if c.left > 0 {
		c.left--
		c.part.ScheduleTick(e.Time()+1, c)
	}
	return nil
}

// TestLonePartitionRunsInOneWindow is the barrier-elision gate: a single
// busy partition (with a second partition linked but quiet until far in the
// future) must execute its entire dense chain in a handful of serial
// windows, not one window per link latency.
func TestLonePartitionRunsInOneWindow(t *testing.T) {
	e := NewEngine(WithPartitions(2), WithCores(2))
	busy := &localChain{part: e.Partition(0), left: 5000}
	quiet := &localChain{part: e.Partition(1)}
	e.Link(e.Partition(0), e.Partition(1), 2)
	e.Link(e.Partition(1), e.Partition(0), 2)
	busy.part.ScheduleTick(0, busy)
	quiet.part.ScheduleTick(10000, quiet)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := windowSnapshot(e)
	if w := snap.Value("sim/windows"); w > 4 {
		t.Errorf("lone dense chain used %v windows, want <= 4", w)
	}
	if b := snap.Value("sim/barrier_spins"); b != 0 {
		t.Errorf("lone dense chain crossed %v barriers, want 0", b)
	}
}

// buildTwoChains wires two partitions that both run dense local chains and
// never send, with a single cross link from partition 1 to partition 0. That
// link is the only window bound: without a next-send promise it caps every
// window at partition 1's head event plus the link latency.
func buildTwoChains(n int) (*Engine, *Remote) {
	e := NewEngine(WithPartitions(2))
	a := &localChain{part: e.Partition(0), left: n}
	b := &localChain{part: e.Partition(1), left: n}
	back := e.Link(e.Partition(1), e.Partition(0), 2)
	a.part.ScheduleTick(0, a)
	b.part.ScheduleTick(0, b)
	return e, back
}

// TestNextSendBoundWidensWindow checks the promise plumbing end to end:
// raising a link's next-send bound lets windows run past the source
// partition's head event.
func TestNextSendBoundWidensWindow(t *testing.T) {
	base, _ := buildTwoChains(1000)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	baseWindows := windowSnapshot(base).Value("sim/windows")
	if baseWindows < 400 {
		t.Fatalf("expected narrow windows without a promise, got %v", baseWindows)
	}

	// Same topology, but the link promises silence forever — which holds,
	// since partition 1 never sends. With the only bound lifted the whole run
	// collapses into one window.
	promised, back := buildTwoChains(1000)
	back.SetNextSend(TimeInf)
	if err := promised.Run(); err != nil {
		t.Fatal(err)
	}
	promisedWindows := windowSnapshot(promised).Value("sim/windows")
	if promisedWindows > 4 {
		t.Errorf("promised link used %v windows (baseline %v), want <= 4", promisedWindows, baseWindows)
	}
}

// TestNextSendBoundViolationPanics makes sure a component cannot silently
// break its own promise.
func TestNextSendBoundViolationPanics(t *testing.T) {
	e := NewEngine(WithPartitions(2))
	r := e.Link(e.Partition(0), e.Partition(1), 2)
	r.SetNextSend(100)
	sink := &localChain{part: e.Partition(1)}
	breaker := &promiseBreaker{out: r, dst: sink}
	e.Partition(0).ScheduleTick(0, breaker)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected a panic from the broken next-send bound")
		}
		if !strings.Contains(fmt.Sprint(rec), "next-send bound") {
			t.Fatalf("unexpected panic: %v", rec)
		}
	}()
	_ = e.Run()
}

type promiseBreaker struct {
	out *Remote
	dst Handler
}

func (p *promiseBreaker) Handle(e Event) error {
	p.out.Schedule(TickEvent{EventBase: NewEventBase(e.Time()+2, p.dst)})
	return nil
}
