package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEngineDispatchTotalOrderRandomized: under a randomized interleaving of
// Schedule and ScheduleTick — including re-entrant scheduling from inside
// running handlers — the engine dispatches every event in the total order
// (time, insertion seq). This is the determinism contract the whole
// simulator rests on: equal-time events fire in FIFO order regardless of
// which API queued them or when.
func TestEngineDispatchTotalOrderRandomized(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		e := NewEngine()
		p := e.Partition(0)
		var times []Time // scheduled time per seq (seq = index)
		var fired []int  // seqs in dispatch order
		var schedule func(at Time, depth int)
		schedule = func(at Time, depth int) {
			id := len(times)
			times = append(times, at)
			h := handlerFunc(func(ev Event) error {
				if ev.Time() != at {
					t.Fatalf("event %d dispatched with time %d, scheduled at %d", id, ev.Time(), at)
				}
				fired = append(fired, id)
				// Re-entrant scheduling: handlers may queue further work at
				// or after the current time.
				if depth < 2 && rng.Intn(3) == 0 {
					for k, n := 0, rng.Intn(3); k < n; k++ {
						schedule(at+Time(rng.Intn(8)), depth+1)
					}
				}
				return nil
			})
			if rng.Intn(2) == 0 {
				p.ScheduleTick(at, h)
			} else {
				p.Schedule(TickEvent{EventBase: NewEventBase(at, h)})
			}
		}
		for i := 0; i < 200; i++ {
			schedule(Time(rng.Intn(64)), 0)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}

		// Reference order: a stable sort by time over insertion sequence.
		// The engine forbids scheduling in the past, so this global sort is
		// exactly the order a correct queue must produce.
		want := make([]int, len(times))
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return times[want[a]] < times[want[b]] })
		if len(fired) != len(times) {
			t.Fatalf("trial %d: dispatched %d of %d events", trial, len(fired), len(times))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: dispatch %d was event %d (t=%d), want event %d (t=%d)",
					trial, i, fired[i], times[fired[i]], want[i], times[want[i]])
			}
		}
		if e.EventCount() != uint64(len(times)) {
			t.Errorf("trial %d: EventCount = %d, want %d", trial, e.EventCount(), len(times))
		}
	}
}
