package sim

import "fmt"

// Port is an endpoint through which a component sends and receives
// messages. Each port has a bounded incoming buffer measured in bytes,
// matching the 4 KB input/output buffers the paper attaches to every fabric
// endpoint.
type Port struct {
	name      string
	comp      Component
	conn      Connection
	capBytes  int
	usedBytes int
	buf       []Msg
}

// NewPort creates a port owned by comp with an incoming buffer of capBytes.
// A capBytes of 0 means unbounded.
func NewPort(comp Component, name string, capBytes int) *Port {
	return &Port{name: name, comp: comp, capBytes: capBytes}
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Component returns the owning component.
func (p *Port) Component() Component { return p.comp }

// Connection returns the connection plugged into the port, or nil.
func (p *Port) Connection() Connection { return p.conn }

// SetConnection plugs the port into a connection. Called by the connection
// when the port is attached.
func (p *Port) SetConnection(c Connection) { p.conn = c }

// Capacity returns the port's buffer capacity in bytes (0 = unbounded).
// Connections with credit-based flow control read it once at attach time to
// seed their credit counters.
func (p *Port) Capacity() int { return p.capBytes }

// CanAccept reports whether a message of n bytes fits in the buffer.
func (p *Port) CanAccept(n int) bool {
	return p.capBytes == 0 || p.usedBytes+n <= p.capBytes
}

// Deliver places a message into the incoming buffer and notifies the owner.
// The caller (a connection) must have checked CanAccept first; delivering
// into a full buffer panics, as it means the flow control protocol broke.
func (p *Port) Deliver(now Time, m Msg) {
	n := m.Meta().Bytes
	if !p.CanAccept(n) {
		panic(fmt.Sprintf("sim: port %s buffer overflow (%d used, %d cap, %d incoming)",
			p.name, p.usedBytes, p.capBytes, n))
	}
	m.Meta().RecvTime = now
	p.usedBytes += n
	p.buf = append(p.buf, m)
	p.comp.NotifyRecv(now, p)
}

// Peek returns the oldest buffered message without removing it, or nil.
func (p *Port) Peek() Msg {
	if len(p.buf) == 0 {
		return nil
	}
	return p.buf[0]
}

// Retrieve removes and returns the oldest buffered message, or nil. When
// space frees up, the attached connection is notified so stalled senders
// can resume.
func (p *Port) Retrieve(now Time) Msg {
	if len(p.buf) == 0 {
		return nil
	}
	m := p.buf[0]
	p.buf = p.buf[1:]
	p.usedBytes -= m.Meta().Bytes
	if p.conn != nil {
		p.conn.NotifyBufferFree(now, p)
	}
	return m
}

// Send hands a message to the attached connection. It reports false when
// the connection cannot accept the message now (sender must retry on a
// later tick, typically after NotifyPortFree).
func (p *Port) Send(now Time, m Msg) bool {
	if p.conn == nil {
		panic(fmt.Sprintf("sim: port %s is not connected", p.name))
	}
	if m.Meta().Src != p {
		// Skip the redundant store on retransmissions: the original send
		// already set Src, and the receiving side (possibly in another
		// partition) reads it to route NACKs.
		m.Meta().Src = p
	}
	if m.Meta().ID == 0 {
		p.conn.Partition().AssignMsgID(m)
	}
	return p.conn.Send(now, m)
}

// Buffered returns the number of messages waiting in the port.
func (p *Port) Buffered() int { return len(p.buf) }

// UsedBytes returns the occupied buffer bytes.
func (p *Port) UsedBytes() int { return p.usedBytes }
