package sim

// Msg is a message exchanged between components through ports. The concrete
// message types (memory requests, RDMA packets, ...) are defined by the
// packages that use them; the simulation kernel only needs the metadata.
type Msg interface {
	Meta() *MsgMeta
}

// MsgMeta carries the routing and accounting information shared by all
// messages.
type MsgMeta struct {
	ID  uint64
	Src *Port
	Dst *Port
	// Bytes is the size of the message on the wire, including headers and
	// (possibly compressed) payload. Connections use it to compute
	// occupancy and buffering.
	Bytes int
	// SendTime is stamped by the connection when transmission starts.
	SendTime Time
	// RecvTime is stamped by the connection when the message is delivered
	// into the destination port buffer.
	RecvTime Time
}

// AssignMsgID gives the message an ID unique within this engine's run.
// The counter lives on the Engine, not in a process global: the sweep
// engine runs independent simulations in parallel, and a shared counter
// would leak scheduling order between concurrent runs into the IDs. With
// a per-engine counter the full message stream — IDs included — is a pure
// function of the simulation's inputs, byte-identical for any worker
// count.
func (e *Engine) AssignMsgID(m Msg) {
	e.msgID++
	m.Meta().ID = e.msgID
}
