package sim

import "sync/atomic"

// Msg is a message exchanged between components through ports. The concrete
// message types (memory requests, RDMA packets, ...) are defined by the
// packages that use them; the simulation kernel only needs the metadata.
type Msg interface {
	Meta() *MsgMeta
}

// MsgMeta carries the routing and accounting information shared by all
// messages.
type MsgMeta struct {
	ID  uint64
	Src *Port
	Dst *Port
	// Bytes is the size of the message on the wire, including headers and
	// (possibly compressed) payload. Connections use it to compute
	// occupancy and buffering.
	Bytes int
	// SendTime is stamped by the connection when transmission starts.
	SendTime Time
	// RecvTime is stamped by the connection when the message is delivered
	// into the destination port buffer.
	RecvTime Time
}

var nextMsgID atomic.Uint64

// AssignMsgID gives the message a unique ID. The counter is process-global
// and atomic: each simulation runs single-threaded, but the sweep engine
// runs independent simulations in parallel, and IDs only need to be unique
// — no component's behaviour depends on their values, so sharing the
// counter across concurrent runs does not perturb results.
func AssignMsgID(m Msg) {
	m.Meta().ID = nextMsgID.Add(1)
}
