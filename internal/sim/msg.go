package sim

// Msg is a message exchanged between components through ports. The concrete
// message types (memory requests, RDMA packets, ...) are defined by the
// packages that use them; the simulation kernel only needs the metadata.
type Msg interface {
	Meta() *MsgMeta
}

// MsgMeta carries the routing and accounting information shared by all
// messages.
type MsgMeta struct {
	ID  uint64
	Src *Port
	Dst *Port
	// Bytes is the size of the message on the wire, including headers and
	// (possibly compressed) payload. Connections use it to compute
	// occupancy and buffering.
	Bytes int
	// SendTime is stamped by the connection when transmission starts.
	SendTime Time
	// RecvTime is stamped by the connection when the message is delivered
	// into the destination port buffer.
	RecvTime Time
}
