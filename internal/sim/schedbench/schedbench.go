// Package schedbench generates synthetic multi-partition event schedules for
// benchmarking and property-testing the engine's window scheduler. The three
// shapes cover the regimes where window policy matters:
//
//   - idle-heavy: short, widely spaced bursts per partition, so most of the
//     run is one partition working alone between long quiet stretches;
//   - bursty: long dense bursts separated by idle gaps, ending in a cross
//     send, so the scheduler must merge thousands of one-cycle steps;
//   - serial-phase: one partition does nearly all the work and occasionally
//     pokes a neighbour, the single-partition-dominant extreme.
//
// Every schedule is a pure function of its seed: nodes carry their own
// xorshift state, all scheduling decisions derive from it, and the run folds
// each dispatched event into a per-partition digest. Two runs agree on the
// combined digest if and only if they dispatched the same events at the same
// times in the same per-partition order — which is exactly the engine's
// byte-identity contract across core counts and window policies.
package schedbench

import (
	"fmt"
	"math/rand"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// Shape names a synthetic schedule shape.
type Shape string

// The supported shapes.
const (
	IdleHeavy   Shape = "idle-heavy"
	Bursty      Shape = "bursty"
	SerialPhase Shape = "serial-phase"
)

// Shapes lists every shape, in report order.
var Shapes = []Shape{IdleHeavy, Bursty, SerialPhase}

// numNodes matches the platform's partition count (four GPUs plus the hub).
const numNodes = 5

// LinkLatency is the declared minimum latency of every ring link; the fixed
// baseline uses it as the classic lookahead.
const LinkLatency sim.Time = 4

// Result summarizes one run of a synthetic schedule.
type Result struct {
	Shape           Shape
	Digest          uint64
	Cycles          sim.Time
	Events          uint64
	Windows         uint64
	SerialWindows   uint64
	BarrierWindows  uint64
	RemoteMsgs      uint64
	EventsPerWindow float64
}

// segment is one self-driven activity phase of a node: wait idle cycles,
// then dispatch burst events gap cycles apart, then (optionally) send a
// token to a ring neighbour.
type segment struct {
	idle  sim.Time
	burst int
	gap   sim.Time
	send  bool
}

// node is one partition's component: it walks its program of segments and
// reacts to tokens from its neighbours. All state is partition-local.
type node struct {
	part   *sim.Partition
	peers  []*node
	out    []*sim.Remote // links to peers, same order
	rng    uint64
	digest uint64

	program []segment
	next    int

	burstLeft int
	gap       sim.Time
	send      bool
}

// localEvent advances the owning node's burst; tokenEvent is a cross arrival
// that may be forwarded while its ttl lasts.
type localEvent struct{ sim.EventBase }

type tokenEvent struct {
	sim.EventBase
	ttl int
}

// rand steps the node's xorshift64 state.
func (n *node) rand() uint64 {
	x := n.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.rng = x
	return x
}

// mix folds one dispatched event into the node's digest.
func (n *node) mix(now sim.Time, tag uint64) {
	h := n.digest ^ (uint64(now) * 0x9e3779b97f4a7c15) ^ tag
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	n.digest = h
}

// Handle implements sim.Handler.
func (n *node) Handle(e sim.Event) error {
	now := e.Time()
	switch evt := e.(type) {
	case *localEvent:
		n.mix(now, 1)
		if n.burstLeft == 0 {
			// Segment start: load the next program entry.
			seg := n.program[n.next]
			n.next++
			n.burstLeft = seg.burst
			n.gap = seg.gap
			n.send = seg.send
		}
		n.burstLeft--
		if n.burstLeft > 0 {
			n.part.Schedule(&localEvent{sim.NewEventBase(now+n.gap, n)})
			return nil
		}
		if n.send {
			n.sendToken(now, int(n.rand()%3))
		}
		if n.next < len(n.program) {
			n.part.Schedule(&localEvent{sim.NewEventBase(now+n.program[n.next].idle, n)})
		}
		return nil
	case *tokenEvent:
		n.mix(now, 2)
		// Forward the token around the ring while its ttl lasts, so cross
		// traffic forms short causal cascades rather than single hops.
		if evt.ttl > 0 && n.rand()%2 == 0 {
			n.sendToken(now, evt.ttl-1)
		}
		return nil
	default:
		return fmt.Errorf("schedbench: unexpected event %T", e)
	}
}

// sendToken emits a token to a random peer at the link latency plus jitter.
func (n *node) sendToken(now sim.Time, ttl int) {
	i := int(n.rand()) % len(n.peers)
	if i < 0 {
		i = -i
	}
	dst := n.peers[i]
	t := now + LinkLatency + sim.Time(n.rand()%4)
	n.out[i].Schedule(&tokenEvent{sim.NewEventBase(t, dst), ttl})
}

// program builds a node's segment list for the shape from the generator rng.
func program(shape Shape, idx int, rng *rand.Rand) []segment {
	var segs []segment
	switch shape {
	case IdleHeavy:
		// Jittered round-robin slots: node i's k-th burst lands near slot
		// (k*numNodes+i), so activity hands off between partitions instead of
		// piling up — the pipeline-phase pattern where adaptive windows win.
		const pitch = 400
		cursor := sim.Time(0)
		for k := 0; k < 30; k++ {
			start := sim.Time((k*numNodes+idx)*pitch + rng.Intn(120))
			idle := sim.Time(1)
			if start > cursor {
				idle = start - cursor
			}
			seg := segment{
				idle:  idle,
				burst: 60 + rng.Intn(40),
				gap:   sim.Time(2 + rng.Intn(3)),
				send:  rng.Intn(10) < 4,
			}
			segs = append(segs, seg)
			cursor += idle + sim.Time(seg.burst)*seg.gap
		}
	case Bursty:
		const pitch = 700
		cursor := sim.Time(0)
		for k := 0; k < 20; k++ {
			start := sim.Time((k*numNodes+idx)*pitch + rng.Intn(150))
			idle := sim.Time(1)
			if start > cursor {
				idle = start - cursor
			}
			seg := segment{
				idle:  idle,
				burst: 300 + rng.Intn(200),
				gap:   1,
				send:  true,
			}
			segs = append(segs, seg)
			cursor += idle + sim.Time(seg.burst)*seg.gap
		}
	case SerialPhase:
		if idx == 0 {
			for i := 0; i < 8; i++ {
				segs = append(segs, segment{
					idle:  sim.Time(5 + rng.Intn(20)),
					burst: 1500 + rng.Intn(1500),
					gap:   1,
					send:  true,
				})
			}
		} else {
			for i := 0; i < 2; i++ {
				segs = append(segs, segment{
					idle:  sim.Time(400*idx + rng.Intn(500)),
					burst: 3,
					gap:   2,
					send:  rng.Intn(2) == 0,
				})
			}
		}
	default:
		panic(fmt.Sprintf("schedbench: unknown shape %q", shape))
	}
	return segs
}

// Run executes one synthetic schedule to completion: numNodes partitions on
// a bidirectional ring of LinkLatency links, the shape's program on each
// node, and the engine configured with the given worker count. fixedLA 0
// selects the default adaptive windows; a nonzero value (at most LinkLatency)
// pins the classic fixed-lookahead schedule for baseline comparison.
func Run(shape Shape, seed int64, cores int, fixedLA sim.Time) (Result, error) {
	opts := []sim.Option{sim.WithPartitions(numNodes), sim.WithCores(cores)}
	if fixedLA != 0 {
		opts = append(opts, sim.WithLookahead(fixedLA))
	}
	eng := sim.NewEngine(opts...)
	reg := metrics.NewRegistry()
	eng.RegisterMetrics(reg, "sim")

	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*node, numNodes)
	for i := range nodes {
		nodes[i] = &node{part: eng.Partition(i), rng: rng.Uint64() | 1}
	}
	for i, n := range nodes {
		l, r := nodes[(i+numNodes-1)%numNodes], nodes[(i+1)%numNodes]
		n.peers = []*node{l, r}
		n.out = []*sim.Remote{
			eng.Link(n.part, l.part, LinkLatency),
			eng.Link(n.part, r.part, LinkLatency),
		}
	}
	for i, n := range nodes {
		n.program = program(shape, i, rng)
		n.part.Schedule(&localEvent{sim.NewEventBase(n.program[0].idle, n)})
		n.next = 0
	}

	if err := eng.Run(); err != nil {
		return Result{}, err
	}

	var digest uint64 = 1469598103934665603
	for _, n := range nodes {
		digest = (digest ^ n.digest) * 1099511628211
	}
	snap := reg.Snapshot()
	res := Result{
		Shape:          shape,
		Digest:         digest,
		Cycles:         eng.Now(),
		Events:         eng.EventCount(),
		Windows:        uint64(snap.Value("sim/windows")),
		SerialWindows:  uint64(snap.Value("sim/serial_fallback_windows")),
		BarrierWindows: uint64(snap.Value("sim/barrier_spins")),
		RemoteMsgs:     uint64(snap.Value("sim/remote_msgs")),
	}
	if res.Windows > 0 {
		res.EventsPerWindow = float64(res.Events) / float64(res.Windows)
	}
	return res, nil
}
