package schedbench

import (
	"runtime"
	"testing"

	"mgpucompress/internal/sim"
)

// TestWindowPolicyEquivalence is the window scheduler's property test: for
// every schedule shape and seed, runs under adaptive windows (la=0), a
// narrower-than-necessary fixed window (la=1), and the classic fixed
// lookahead (la=LinkLatency) must all reproduce the serial fixed-lookahead
// reference bit for bit — same digest, same final cycle, same event count —
// across worker counts and GOMAXPROCS settings. Adaptive runs must also
// never use more windows than the fixed baseline. Run under -race this
// doubles as the data-race gate for the elision and worker-parking paths.
func TestWindowPolicyEquivalence(t *testing.T) {
	seeds := []int64{1, 42, 987654321}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, shape := range Shapes {
		for _, seed := range seeds {
			ref, err := Run(shape, seed, 1, LinkLatency)
			if err != nil {
				t.Fatalf("%s/seed=%d: reference run: %v", shape, seed, err)
			}
			if ref.Events == 0 || ref.RemoteMsgs == 0 {
				t.Fatalf("%s/seed=%d: degenerate reference (events=%d remote=%d)",
					shape, seed, ref.Events, ref.RemoteMsgs)
			}
			for _, gmp := range []int{1, runtime.NumCPU()} {
				prev := runtime.GOMAXPROCS(gmp)
				for _, cores := range []int{1, 2, 8} {
					for _, la := range []sim.Time{0, 1, LinkLatency} {
						got, err := Run(shape, seed, cores, la)
						if err != nil {
							t.Fatalf("%s/seed=%d/gmp=%d/cores=%d/la=%d: %v",
								shape, seed, gmp, cores, la, err)
						}
						if got.Digest != ref.Digest || got.Cycles != ref.Cycles || got.Events != ref.Events {
							t.Errorf("%s/seed=%d/gmp=%d/cores=%d/la=%d: diverged: "+
								"digest %x/%x cycles %d/%d events %d/%d",
								shape, seed, gmp, cores, la,
								got.Digest, ref.Digest, got.Cycles, ref.Cycles, got.Events, ref.Events)
						}
						if la == 0 && got.Windows > ref.Windows {
							t.Errorf("%s/seed=%d/gmp=%d/cores=%d: adaptive used %d windows, fixed %d",
								shape, seed, gmp, cores, got.Windows, ref.Windows)
						}
					}
				}
				runtime.GOMAXPROCS(prev)
			}
		}
	}
}

// TestShapeReductions pins the headline property of each shape: adaptive
// windows beat the fixed-lookahead baseline by a wide margin when traffic
// has locality. The thresholds are far below the measured ratios (roughly
// 30x, 50x, 110x) so schedule-generator tweaks do not flake the suite, but
// a regression to per-latency windowing fails loudly.
func TestShapeReductions(t *testing.T) {
	for _, shape := range Shapes {
		adaptive, err := Run(shape, 7, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := Run(shape, 7, 1, LinkLatency)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Digest != fixed.Digest {
			t.Fatalf("%s: adaptive and fixed runs diverged", shape)
		}
		if ratio := float64(fixed.Windows) / float64(adaptive.Windows); ratio < 10 {
			t.Errorf("%s: window reduction %.1fx, want >= 10x (adaptive %d, fixed %d)",
				shape, ratio, adaptive.Windows, fixed.Windows)
		}
	}
}
