package sim

import "testing"

type testMsg struct {
	MsgMeta
	payload int
}

func (m *testMsg) Meta() *MsgMeta { return &m.MsgMeta }

type stubComponent struct {
	ComponentBase
	recvNotified     int
	portFreeNotified int
}

func (c *stubComponent) Handle(Event) error         { return nil }
func (c *stubComponent) NotifyRecv(Time, *Port)     { c.recvNotified++ }
func (c *stubComponent) NotifyPortFree(Time, *Port) { c.portFreeNotified++ }

func newStubComponent(name string) *stubComponent {
	return &stubComponent{ComponentBase: NewComponentBase(name)}
}

func TestPortDeliverRetrieveFIFO(t *testing.T) {
	c := newStubComponent("c")
	p := NewPort(c, "c.in", 0)
	for i := 0; i < 5; i++ {
		p.Deliver(0, &testMsg{MsgMeta: MsgMeta{Bytes: 8}, payload: i})
	}
	if c.recvNotified != 5 {
		t.Errorf("recvNotified = %d, want 5", c.recvNotified)
	}
	for i := 0; i < 5; i++ {
		m := p.Retrieve(0)
		if m == nil {
			t.Fatalf("Retrieve %d returned nil", i)
		}
		if m.(*testMsg).payload != i {
			t.Errorf("Retrieve %d returned payload %d", i, m.(*testMsg).payload)
		}
	}
	if p.Retrieve(0) != nil {
		t.Error("Retrieve on empty port returned a message")
	}
}

func TestPortByteAccountingAndCapacity(t *testing.T) {
	c := newStubComponent("c")
	p := NewPort(c, "c.in", 100)
	if !p.CanAccept(100) {
		t.Error("empty port rejected a message that exactly fits")
	}
	p.Deliver(0, &testMsg{MsgMeta: MsgMeta{Bytes: 60}})
	if p.CanAccept(41) {
		t.Error("port accepted overflow")
	}
	if !p.CanAccept(40) {
		t.Error("port rejected a fitting message")
	}
	p.Deliver(0, &testMsg{MsgMeta: MsgMeta{Bytes: 40}})
	if p.UsedBytes() != 100 {
		t.Errorf("UsedBytes = %d, want 100", p.UsedBytes())
	}
	p.Retrieve(0)
	if p.UsedBytes() != 40 {
		t.Errorf("UsedBytes after retrieve = %d, want 40", p.UsedBytes())
	}
}

func TestPortOverflowPanics(t *testing.T) {
	c := newStubComponent("c")
	p := NewPort(c, "c.in", 10)
	defer func() {
		if recover() == nil {
			t.Error("delivering into a full port did not panic")
		}
	}()
	p.Deliver(0, &testMsg{MsgMeta: MsgMeta{Bytes: 11}})
}

func TestDirectConnectionDeliversAfterLatency(t *testing.T) {
	e := NewEngine()
	src := newStubComponent("src")
	dst := newStubComponent("dst")
	srcPort := NewPort(src, "src.out", 0)
	dstPort := NewPort(dst, "dst.in", 0)
	conn := NewDirectConnection("link", e.Partition(0), 3)
	conn.Plug(srcPort)
	conn.Plug(dstPort)

	m := &testMsg{MsgMeta: MsgMeta{Dst: dstPort, Bytes: 64}}
	if !srcPort.Send(0, m) {
		t.Fatal("Send rejected")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dstPort.Buffered() != 1 {
		t.Fatal("message not delivered")
	}
	got := dstPort.Retrieve(e.Now())
	if got.Meta().RecvTime != 3 {
		t.Errorf("RecvTime = %d, want 3", got.Meta().RecvTime)
	}
	if got.Meta().SendTime != 0 {
		t.Errorf("SendTime = %d, want 0", got.Meta().SendTime)
	}
	if got.Meta().ID == 0 {
		t.Error("message was not assigned an ID")
	}
}

func TestDirectConnectionBackpressureParksAndResumes(t *testing.T) {
	e := NewEngine()
	src := newStubComponent("src")
	dst := newStubComponent("dst")
	srcPort := NewPort(src, "src.out", 0)
	dstPort := NewPort(dst, "dst.in", 64) // room for exactly one message
	conn := NewDirectConnection("link", e.Partition(0), 1)
	conn.Plug(srcPort)
	conn.Plug(dstPort)

	for i := 0; i < 3; i++ {
		srcPort.Send(0, &testMsg{MsgMeta: MsgMeta{Dst: dstPort, Bytes: 64}, payload: i})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dstPort.Buffered() != 1 {
		t.Fatalf("buffered = %d, want 1 (others parked)", dstPort.Buffered())
	}
	// Drain one; a parked message should be delivered immediately.
	first := dstPort.Retrieve(e.Now())
	if first.(*testMsg).payload != 0 {
		t.Errorf("first payload = %d, want 0", first.(*testMsg).payload)
	}
	if dstPort.Buffered() != 1 {
		t.Fatalf("parked message not delivered after space freed")
	}
	second := dstPort.Retrieve(e.Now())
	if second.(*testMsg).payload != 1 {
		t.Errorf("second payload = %d, want 1 (FIFO violated)", second.(*testMsg).payload)
	}
	if dstPort.Buffered() != 1 {
		t.Fatal("third message not delivered")
	}
	third := dstPort.Retrieve(e.Now())
	if third.(*testMsg).payload != 2 {
		t.Errorf("third payload = %d, want 2", third.(*testMsg).payload)
	}
}

func TestDirectConnectionUnpluggedDestinationPanics(t *testing.T) {
	e := NewEngine()
	src := newStubComponent("src")
	dst := newStubComponent("dst")
	srcPort := NewPort(src, "src.out", 0)
	dstPort := NewPort(dst, "dst.in", 0)
	conn := NewDirectConnection("link", e.Partition(0), 1)
	conn.Plug(srcPort)
	defer func() {
		if recover() == nil {
			t.Error("send to unplugged destination did not panic")
		}
	}()
	srcPort.Send(0, &testMsg{MsgMeta: MsgMeta{Dst: dstPort, Bytes: 1}})
}
