package sim

import "fmt"

// Partition is one independently clocked slice of the simulation: a private
// event queue, clock, and sequence counters. Components are constructed
// against a Partition and schedule exclusively on it; the Engine advances
// all partitions together under the conservative windowing protocol.
//
// All sequence numbers are pure functions of the partition index and the
// partition-local operation count: partition i's n-th schedule gets global
// seq n*K+i (K = partition count). Interleaved streams from different
// partitions therefore never collide, and — because no goroutine identity
// or scheduling order enters the formula — the numbering is byte-identical
// for any core count. With K=1 the formula degenerates to the classic
// single-queue counter.
type Partition struct {
	eng *Engine
	idx int

	queue     eventQueue
	now       Time
	localSeq  uint64
	msgSeq    uint64
	scheduled uint64
	handled   uint64

	stopped bool
	err     error
	errTime Time
	errSeq  uint64

	// tick is reused across ScheduleTick dispatches so handling a
	// lightweight tick allocates nothing.
	tick TickEvent

	// Window-scheduling state. curLimit is the exclusive bound the current
	// window dispatches under; in a lone-partition dynamic window (dynamic
	// set by the engine) the partition's own Remote emissions collapse it,
	// so the dispatch loop re-reads it every iteration. dirty lists the
	// outgoing links that buffered traffic this window, and pool recycles
	// their outbox buffers across windows. All four fields are only touched
	// by whoever owns the partition at the time: its worker inside a window,
	// the coordinator at the barrier.
	curLimit Time
	dynamic  bool
	dirty    []*Remote
	pool     [][]remoteEntry
}

// Engine returns the engine this partition belongs to.
func (p *Partition) Engine() *Engine { return p.eng }

// Index returns the partition's index within its engine.
func (p *Partition) Index() int { return p.idx }

// Now returns the partition's current simulated time.
func (p *Partition) Now() Time { return p.now }

// Pending returns the number of events waiting in this partition's queue.
func (p *Partition) Pending() int { return len(p.queue) }

// nextSeq assigns the next partition-striped sequence number.
func (p *Partition) nextSeq() uint64 {
	p.localSeq++
	return p.localSeq*uint64(len(p.eng.parts)) + uint64(p.idx)
}

// enqueue is the single entry point into the queue: past-check, sequence
// assignment, accounting, push.
func (p *Partition) enqueue(t Time, evt Event, h Handler) {
	if t < p.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, p.now))
	}
	p.scheduled++
	p.queue.push(queuedEvent{time: t, seq: p.nextSeq(), evt: evt, h: h})
}

// enqueueStamped merges a cross-partition entry whose sequence number was
// already assigned by the emitting partition. Striped numbering keeps
// foreign stamps disjoint from local ones, and because the stamp was fixed
// at emission time, the (time, seq) order — and therefore every run's
// behaviour — is independent of window placement and merge timing.
func (p *Partition) enqueueStamped(t Time, seq uint64, evt Event) {
	if t < p.now {
		panic(fmt.Sprintf("sim: merging remote event at %d before now %d", t, p.now))
	}
	p.scheduled++
	p.queue.push(queuedEvent{time: t, seq: seq, evt: evt})
}

// takeBuf hands out a pooled outbox buffer (or a fresh one) for a link that
// starts buffering this window. Buffers come back via the barrier drain.
func (p *Partition) takeBuf() []remoteEntry {
	if n := len(p.pool); n > 0 {
		b := p.pool[n-1]
		p.pool[n-1] = nil
		p.pool = p.pool[:n-1]
		return b
	}
	return make([]remoteEntry, 0, 16)
}

// Schedule adds an event to this partition's queue. It panics if the event
// is in the partition's past. Events at the same timestamp run in the order
// they were scheduled.
func (p *Partition) Schedule(evt Event) {
	p.enqueue(evt.Time(), evt, evt.Handler())
}

// ScheduleTick queues a lightweight tick for h at time t without allocating:
// only the handler is stored, and dispatch reuses a per-partition TickEvent.
// Ticks share the sequence space with Schedule, so the FIFO-at-equal-time
// guarantee holds across both.
func (p *Partition) ScheduleTick(t Time, h Handler) {
	p.enqueue(t, nil, h)
}

// AssignMsgID gives the message an ID unique within this engine's run.
// IDs are striped by partition exactly like event sequence numbers (n-th
// message of partition i gets n*K+i, guaranteed nonzero), so the full
// message stream is a pure function of the simulation's inputs,
// byte-identical for any core count. With one partition the numbering is
// the classic per-engine counter.
func (p *Partition) AssignMsgID(m Msg) {
	p.msgSeq++
	m.Meta().ID = p.msgSeq*uint64(len(p.eng.parts)) + uint64(p.idx)
}

// Pause stops the engine's current Run at the next window barrier; this
// partition stops dispatching immediately. Queued events remain, so a later
// Run resumes where the simulation left off.
func (p *Partition) Pause() { p.stopped = true }

// window dispatches this partition's events with time < the window limit,
// in (time, seq) order. It touches only partition-local state (plus whatever
// the handlers own within this partition), so windows of different
// partitions are safe to run concurrently. The limit lives in curLimit and
// is re-read every iteration: in a dynamic lone-partition window the
// partition's own Remote emissions collapse it mid-window, which is what
// keeps running far ahead of the other partitions conservative.
func (p *Partition) window(limit Time) {
	p.curLimit = limit
	for len(p.queue) > 0 && !p.stopped {
		if p.queue[0].time >= p.curLimit {
			return
		}
		next := p.queue.pop()
		p.now = next.time
		p.handled++

		var err error
		if next.evt != nil {
			err = next.evt.Handler().Handle(next.evt)
		} else {
			p.tick = TickEvent{NewEventBase(next.time, next.h)}
			err = next.h.Handle(&p.tick)
		}
		if err != nil {
			p.err = fmt.Errorf("sim: event at %d: %w", next.time, err)
			p.errTime = next.time
			p.errSeq = next.seq
			return
		}
	}
}
