package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"sync"
	"testing"

	"mgpucompress/internal/metrics"
)

// This file is the schedule-independence regression gate for the parallel
// sweep path (and, eventually, the parallel-DES work): N engines running
// on racing goroutines must each produce a digest byte-identical to a solo
// run, message IDs and metrics snapshot included. Any globalmut-class bug
// — mutable package-level state shared between concurrently running
// engines, like the process-global message-ID counter this repository once
// had — shifts per-run values with the goroutine schedule and fails the
// comparison. Run under -race (the CI default) it also catches the data
// race itself.

// schedDriver fires one request per tick and folds every reply — ID,
// timestamps, payload — into a hash.
type schedDriver struct {
	ComponentBase
	part   *Partition
	out    *Port
	in     *Port
	dst    *Port
	rounds int
	sent   int
	sum    *[32]byte
	h      []byte
}

func (d *schedDriver) Handle(e Event) error {
	if d.sent < d.rounds {
		m := &testMsg{MsgMeta: MsgMeta{Dst: d.dst, Bytes: 64}, payload: d.sent}
		d.out.Send(e.Time(), m)
		d.sent++
		d.part.ScheduleTick(e.Time()+1, d)
	}
	return nil
}

func (d *schedDriver) NotifyRecv(now Time, p *Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		meta := m.Meta()
		var rec [40]byte
		binary.LittleEndian.PutUint64(rec[0:], meta.ID)
		binary.LittleEndian.PutUint64(rec[8:], uint64(meta.SendTime))
		binary.LittleEndian.PutUint64(rec[16:], uint64(meta.RecvTime))
		binary.LittleEndian.PutUint64(rec[24:], uint64(m.(*testMsg).payload))
		binary.LittleEndian.PutUint64(rec[32:], uint64(now))
		d.h = append(d.h, rec[:]...)
	}
}

func (d *schedDriver) NotifyPortFree(Time, *Port) {}

// schedEcho bounces every request back to the driver as a fresh message,
// whose ID Port.Send assigns from the engine counter.
type schedEcho struct {
	ComponentBase
	in   *Port
	out  *Port
	back *Port
}

func (c *schedEcho) Handle(Event) error { return nil }

func (c *schedEcho) NotifyRecv(now Time, p *Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		rsp := &testMsg{MsgMeta: MsgMeta{Dst: c.back, Bytes: 64}, payload: m.(*testMsg).payload}
		c.out.Send(now, rsp)
	}
}

func (c *schedEcho) NotifyPortFree(Time, *Port) {}

// runScheduleDigest runs one complete request/echo simulation and digests
// everything schedule-sensitive state could perturb: the reply stream
// (message IDs included) and the engine's metrics snapshot.
func runScheduleDigest(t *testing.T, rounds int) [32]byte {
	e := NewEngine()
	p0 := e.Partition(0)
	drv := &schedDriver{ComponentBase: NewComponentBase("drv"), part: p0, rounds: rounds}
	ech := &schedEcho{ComponentBase: NewComponentBase("echo")}
	drv.out = NewPort(drv, "drv.out", 0)
	drv.in = NewPort(drv, "drv.in", 0)
	ech.in = NewPort(ech, "echo.in", 256) // bounded: parking paths run too
	ech.out = NewPort(ech, "echo.out", 0)
	conn := NewDirectConnection("link", p0, 2)
	for _, p := range []*Port{drv.out, drv.in, ech.in, ech.out} {
		conn.Plug(p)
	}
	drv.dst = ech.in
	ech.back = drv.in

	reg := metrics.NewRegistry()
	e.RegisterMetrics(reg, "sim")
	p0.ScheduleTick(0, drv)
	if err := e.Run(); err != nil {
		t.Error(err)
	}
	var snap bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&snap); err != nil {
		t.Error(err)
	}
	return sha256.Sum256(append(drv.h, snap.Bytes()...))
}

// TestScheduleIndependence: the digest of a run must not depend on what
// else the process is doing — not on other engines running concurrently,
// not on GOMAXPROCS, not on how many runs came before.
func TestScheduleIndependence(t *testing.T) {
	const rounds = 200
	want := runScheduleDigest(t, rounds)

	// A later solo run must match: a cross-run counter (the old global
	// message-ID counter) would already diverge here.
	if again := runScheduleDigest(t, rounds); again != want {
		t.Fatal("second solo run diverged from the first: state leaked between runs")
	}

	for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
		prev := runtime.GOMAXPROCS(procs)
		const fleet = 8
		digests := make([][32]byte, fleet)
		var wg sync.WaitGroup
		for i := range digests {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				digests[i] = runScheduleDigest(t, rounds)
			}(i)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		for i, d := range digests {
			if d != want {
				t.Errorf("GOMAXPROCS=%d: concurrent run %d diverged from the solo run", procs, i)
			}
		}
	}
}
