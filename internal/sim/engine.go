// Package sim provides a deterministic discrete-event simulation kernel in
// the style of MGSim: an event engine, components that handle events, ports
// with bounded buffers, and connections that move messages between ports
// with configurable timing.
//
// Time is measured in integer cycles. The multi-GPU platform built on top of
// this package runs everything in a single 1 GHz clock domain, matching the
// configuration in the paper (Table VII), so one cycle corresponds to 1 ns.
//
// # Conservative parallel execution
//
// The engine is split into partitions (one per GPU plus a hub for the shared
// fabric in the platform's use). Each partition owns a private event queue
// and clock; components belong to exactly one partition and schedule only on
// it. Cross-partition traffic travels over Remote links that declare a
// minimum latency at construction. Run advances all partitions window by
// window; cross traffic parks in per-link outboxes until the window barrier
// merges it into the destination queues.
//
// Window widths adapt to traffic rather than tracking simulated time: a
// partition whose next event is at time h cannot emit anything that lands
// before h plus its cheapest outgoing link, so the window limit is the
// minimum of those bounds over every partition with pending work — idle and
// locally-busy stretches execute in one window instead of one window per
// minimum link latency. When a single partition has work under the limit the
// engine elides the barrier entirely and runs it inline, widening the window
// dynamically as far as the other partitions' queued events (and the lone
// partition's own emissions, reflected through the link graph) allow.
//
// Event order inside a partition is the (time, seq) total order. Sequence
// numbers are partition-striped and assigned by the emitting partition — for
// cross-partition events, stamped by the source at emission time — so the
// order is a pure function of simulation content, never of window placement,
// goroutine scheduling, or the core count: a run's observable behaviour is
// byte-identical for any WithCores value and either window policy.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mgpucompress/internal/metrics"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// TimeInf is a sentinel for "never".
const TimeInf Time = math.MaxUint64

// Event is something that happens at a point in simulated time. Events are
// totally ordered by (time, secondary ID) so simulation runs are
// deterministic regardless of scheduling order.
type Event interface {
	// Time returns when the event happens.
	Time() Time
	// Handler returns the handler that should process the event.
	Handler() Handler
}

// Handler processes events.
type Handler interface {
	Handle(e Event) error
}

// EventBase provides a canonical Event implementation to embed in concrete
// event types.
type EventBase struct {
	EvtTime    Time
	EvtHandler Handler
}

// NewEventBase builds an EventBase for the given time and handler.
func NewEventBase(t Time, h Handler) EventBase {
	return EventBase{EvtTime: t, EvtHandler: h}
}

// Time returns when the event happens.
func (e EventBase) Time() Time { return e.EvtTime }

// Handler returns the handler that processes the event.
func (e EventBase) Handler() Handler { return e.EvtHandler }

// queuedEvent is one pending entry. The time is cached so ordering never
// calls through the Event interface, and lightweight ticks scheduled with
// ScheduleTick carry only a Handler (evt is nil), avoiding the interface
// boxing allocation that scheduling a concrete event value would cost.
type queuedEvent struct {
	time Time
	seq  uint64 // tie-breaker for determinism
	evt  Event  // nil for lightweight ticks
	h    Handler
}

func (q queuedEvent) less(o queuedEvent) bool {
	if q.time != o.time {
		return q.time < o.time
	}
	return q.seq < o.seq
}

// eventQueue is a hand-rolled 4-ary min-heap over queuedEvent. Compared to
// container/heap it is monomorphic (no `any` boxing, no interface-method
// dispatch per comparison) and shallower (4 children per node), which
// matters because every simulated event passes through it. The order is the
// same (time, seq) total order the binary heap used, so runs stay
// deterministic.
type eventQueue []queuedEvent

func (q *eventQueue) push(qe queuedEvent) {
	h := append(*q, qe)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !qe.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = qe
	*q = h
}

func (q *eventQueue) pop() queuedEvent {
	h := *q
	top := h[0]
	last := h[len(h)-1]
	h[len(h)-1] = queuedEvent{} // release the Event/Handler references
	h = h[:len(h)-1]
	n := len(h)
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].less(h[m]) {
					m = j
				}
			}
			if !h[m].less(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	*q = h
	return top
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithPartitions splits the engine into n independently clocked event queues
// (default 1). Components are built against one Partition each; traffic
// between partitions must travel over Remote links (see Engine.Link).
func WithPartitions(n int) Option {
	if n < 1 {
		panic("sim: WithPartitions needs at least 1 partition")
	}
	return func(e *Engine) { e.npart = n }
}

// WithCores sets how many OS-level workers advance partitions concurrently
// inside each lookahead window (default 1, i.e. fully serial execution).
// Results are byte-identical for any value.
func WithCores(n int) Option {
	if n < 1 {
		panic("sim: WithCores needs at least 1 core")
	}
	return func(e *Engine) { e.cores = n }
}

// WithLookahead pins every window to a fixed width instead of the default
// adaptive widening, reproducing the classic conservative schedule whose
// barrier count tracks simulated time. A value larger than the minimum
// cross-partition link latency would break conservative safety, so Run
// panics on it; smaller values are safe (they only add barriers). Results
// are byte-identical between fixed and adaptive windows — this option only
// exists as a baseline for benchmarking the window scheduler.
func WithLookahead(t Time) Option {
	if t == 0 {
		panic("sim: WithLookahead needs a nonzero window")
	}
	return func(e *Engine) { e.explicitLA = t }
}

// Engine drives the simulation: it owns the partitions, the cross-partition
// links, and the windowed run loop. Scheduling happens on Partitions, never
// on the Engine itself. Run/RunUntil must be called from host code (outside
// event handlers), one call at a time.
type Engine struct {
	parts   []*Partition
	remotes []*Remote

	npart      int
	cores      int
	explicitLA Time
	maxTime    Time
	running    bool

	// Window-scheduling inputs, rebuilt by prepare at the start of each Run
	// from the link graph (host code may add links between runs).
	fixedLA Time      // nonzero: fixed window width (WithLookahead)
	cross   []*Remote // cross-partition links only (src != dst)
	dist    [][]Time  // all-pairs min cross-partition path latency (closure)

	// Window-scheduling telemetry. All counts derive from the deterministic
	// job list — never from worker scheduling — so snapshots stay
	// byte-identical across core counts.
	windows     uint64
	barrierWins uint64
	serialWins  uint64
	crossMsgs   uint64
	evw         metrics.Distribution

	// Window-barrier state for the spinning worker pool. A macro run still
	// crosses many window barriers, so workers spin on the epoch counter
	// between windows instead of parking on a channel: a futex wake/sleep
	// round trip per window would cost more than the window's own work. jobs
	// and limit are plain fields published by the epoch increment and fenced
	// off by the per-worker acks, which the coordinator waits on before
	// touching them again. The pool starts lazily at the first multi-partition
	// window and parks again (stopWorkers) after a sustained single-partition
	// phase, so serial stretches burn no cores spinning.
	jobs         []*Partition
	limit        Time
	epoch        atomic.Int64
	ticket       atomic.Int64
	stop         atomic.Bool
	acks         []atomic.Int64
	workers      sync.WaitGroup
	workersUp    bool
	consecSerial int
}

// parkAfter is how many consecutive single-partition windows the engine
// tolerates before stopping the spinning workers. Low enough that a long
// serial phase (kernel launch, drained tail) frees the cores quickly, high
// enough that alternating phases do not thrash goroutine creation.
const parkAfter = 128

// NewEngine creates an engine at time 0. With no options it has a single
// partition and runs serially, which reproduces the classic single-queue
// discrete-event kernel exactly.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{npart: 1, cores: 1, maxTime: TimeInf}
	for _, opt := range opts {
		opt(e)
	}
	e.parts = make([]*Partition, e.npart)
	for i := range e.parts {
		e.parts[i] = &Partition{eng: e, idx: i}
	}
	return e
}

// Partition returns partition i.
func (e *Engine) Partition(i int) *Partition { return e.parts[i] }

// Partitions returns the number of partitions.
func (e *Engine) Partitions() int { return len(e.parts) }

// Link declares a scheduling channel from src to dst whose events always run
// at least minLatency cycles after the source's current time. Cross-partition
// links (src != dst) bound how soon one partition can disturb another, which
// is what the window scheduler's adaptive limits are computed from. A link
// with src == dst is a convenience for components wired symmetrically against
// local and remote peers; it enforces the same latency floor but adds no
// synchronization.
func (e *Engine) Link(src, dst *Partition, minLatency Time) *Remote {
	if src.eng != e || dst.eng != e {
		panic("sim: Link across engines")
	}
	if src != dst && minLatency == 0 {
		panic("sim: cross-partition link needs a nonzero minimum latency")
	}
	r := &Remote{src: src, dst: dst, latency: minLatency}
	e.remotes = append(e.remotes, r)
	return r
}

// Now returns the current simulated time: the furthest any partition has
// advanced. With one partition this is exactly the classic engine clock.
func (e *Engine) Now() Time {
	var now Time
	for _, p := range e.parts {
		if p.now > now {
			now = p.now
		}
	}
	return now
}

// EventCount returns the number of events handled so far, over all
// partitions.
func (e *Engine) EventCount() uint64 {
	var n uint64
	for _, p := range e.parts {
		n += p.handled
	}
	return n
}

// Pending returns the number of events waiting across all partitions.
func (e *Engine) Pending() int {
	n := 0
	for _, p := range e.parts {
		n += len(p.queue)
	}
	return n
}

// SetMaxTime makes Run stop once simulated time would exceed the deadline.
// Events at exactly the deadline still run.
func (e *Engine) SetMaxTime(t Time) { e.maxTime = t }

// prepare rebuilds the window scheduler's link-graph summaries: the list of
// cross-partition links (cross) and the all-pairs shortest-path closure over
// them (dist), both with saturating arithmetic. dist bounds how soon any
// causal chain starting at one partition can reach another, which is what
// lets a lone partition run far ahead of the fixed window. K is small (GPU
// count plus one), so the Floyd–Warshall closure is negligible next to a
// single window's work.
func (e *Engine) prepare() {
	k := len(e.parts)
	derived := TimeInf
	if len(e.dist) != k {
		e.dist = make([][]Time, k)
		for i := range e.dist {
			e.dist[i] = make([]Time, k)
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			e.dist[i][j] = TimeInf
		}
		e.dist[i][i] = 0
	}
	e.cross = e.cross[:0]
	for _, r := range e.remotes {
		if r.src == r.dst {
			continue
		}
		e.cross = append(e.cross, r)
		if r.latency < derived {
			derived = r.latency
		}
		if r.latency < e.dist[r.src.idx][r.dst.idx] {
			e.dist[r.src.idx][r.dst.idx] = r.latency
		}
	}
	for m := 0; m < k; m++ {
		for i := 0; i < k; i++ {
			if e.dist[i][m] == TimeInf {
				continue
			}
			for j := 0; j < k; j++ {
				if via := satAdd(e.dist[i][m], e.dist[m][j]); via < e.dist[i][j] {
					e.dist[i][j] = via
				}
			}
		}
	}
	e.fixedLA = 0
	if e.explicitLA != 0 {
		if e.explicitLA > derived {
			panic(fmt.Sprintf("sim: explicit lookahead %d exceeds minimum link latency %d", e.explicitLA, derived))
		}
		e.fixedLA = e.explicitLA
	}
	e.consecSerial = 0
}

// Run processes events in time order until every queue drains, a partition
// pauses, or the max-time deadline passes. It returns the first handler
// error in the global (time, seq) order. Events past the deadline stay
// queued so a later Run with a larger deadline can resume.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	for _, p := range e.parts {
		p.stopped = false
		p.err = nil
	}
	e.running = true
	defer func() { e.running = false }()
	e.prepare()
	defer e.stopWorkers()

	for {
		e.drainRemotes()
		limit, ok := e.nextWindow()
		if !ok {
			return nil
		}
		e.runWindow(limit)
		e.drainRemotes()
		if err := e.windowError(); err != nil {
			return err
		}
		for _, p := range e.parts {
			if p.stopped {
				return nil
			}
		}
	}
}

// RunUntil runs events up to and including time t.
func (e *Engine) RunUntil(t Time) error {
	saved := e.maxTime
	e.maxTime = t
	err := e.Run()
	e.maxTime = saved
	return err
}

// nextWindow computes the exclusive upper bound of the next window, or
// reports false when nothing runnable remains under the deadline.
//
// Adaptive rule (default): the window is bounded per cross link, not per
// simulated cycle. A link whose source's head event is at time h carries
// nothing that arrives before h plus the link latency — the source is asleep
// until h — and never anything before the link's next-send bound, which the
// owning component may raise when its committed state rules out earlier
// traffic (a fabric bus mid-transfer, for example). The window extends to
// the minimum of those per-link bounds; events created inside the window
// land at or past the limit, never inside it. Every bound is at least
// head+latency, so the adaptive window is never narrower than the fixed
// one, and it grows without bound while traffic stays local.
func (e *Engine) nextWindow() (Time, bool) {
	t := TimeInf
	for _, p := range e.parts {
		if len(p.queue) > 0 && p.queue[0].time < t {
			t = p.queue[0].time
		}
	}
	if t == TimeInf || t > e.maxTime {
		return 0, false
	}
	var limit Time
	if e.fixedLA != 0 {
		limit = satAdd(t, e.fixedLA)
	} else {
		limit = TimeInf
		for _, r := range e.cross {
			if len(r.src.queue) == 0 {
				continue
			}
			b := satAdd(r.src.queue[0].time, r.latency)
			if r.nextSend > b {
				b = r.nextSend
			}
			if b < limit {
				limit = b
			}
		}
	}
	if e.maxTime != TimeInf && limit > e.maxTime {
		limit = e.maxTime + 1 // events at exactly the deadline still run
	}
	return limit, true
}

// extraWorkers returns how many worker goroutines the pool holds when
// running, on top of the coordinator itself (0 = run windows inline on the
// caller). The coordinator always participates in window work, so cores=2
// means one extra worker.
func (e *Engine) extraWorkers() int {
	if e.cores <= 1 || len(e.parts) == 1 {
		return 0
	}
	n := e.cores
	if n > len(e.parts) {
		n = len(e.parts)
	}
	return n - 1
}

// startWorkers spins up the worker pool. Called lazily at the first window
// that actually has concurrent work, and again after stopWorkers parked the
// pool through a serial phase.
func (e *Engine) startWorkers() {
	n := e.extraWorkers()
	if n <= 0 || e.workersUp {
		return
	}
	e.stop.Store(false)
	e.acks = make([]atomic.Int64, n)
	base := e.epoch.Load()
	for i := 0; i < n; i++ {
		e.acks[i].Store(base)
		e.workers.Add(1)
		go e.worker(i, base)
	}
	e.workersUp = true
}

// stopWorkers parks the pool: workers observe the stop flag on the next
// epoch bump and exit. Only called between windows (and at Run exit), when
// every worker has already acked and quiesced.
func (e *Engine) stopWorkers() {
	if !e.workersUp {
		return
	}
	e.stop.Store(true)
	e.epoch.Add(1) // release spinners so they observe stop
	e.workers.Wait()
	e.acks = nil
	e.workersUp = false
}

// runWindow advances every partition with work under the limit. Partitions
// never touch each other's state inside a window (cross traffic sits in
// Remote outboxes until the barrier), so dispatch order — and the worker
// count — cannot influence results.
//
// Windows with a single active partition elide the barrier entirely: the
// lone partition runs inline on the coordinator under a dynamically widened
// limit (see wideLimit), and a sustained single-partition phase parks the
// worker pool so serial stretches burn no cores spinning.
func (e *Engine) runWindow(limit Time) {
	e.jobs = e.jobs[:0]
	for _, p := range e.parts {
		if len(p.queue) > 0 && p.queue[0].time < limit {
			e.jobs = append(e.jobs, p)
		}
	}
	e.windows++
	before := e.EventCount()
	if len(e.jobs) == 1 {
		e.serialWins++
		e.consecSerial++
		p := e.jobs[0]
		if e.fixedLA == 0 {
			limit = e.wideLimit(p, limit)
			p.dynamic = true
		}
		p.window(limit)
		p.dynamic = false
		if e.consecSerial >= parkAfter {
			e.stopWorkers()
		}
	} else {
		e.barrierWins++
		e.consecSerial = 0
		e.runJobs(limit)
	}
	e.evw.Observe(float64(e.EventCount() - before))
}

// runJobs executes a multi-partition window, starting the worker pool on
// demand and falling back to inline execution when there is none (cores=1,
// or a single partition).
func (e *Engine) runJobs(limit Time) {
	if !e.workersUp {
		e.startWorkers()
	}
	if !e.workersUp {
		for _, p := range e.jobs {
			p.window(limit)
		}
		return
	}
	e.limit = limit
	e.ticket.Store(0)
	ep := e.epoch.Add(1) // publishes jobs/limit to the spinning workers
	e.windowWork()
	// Wait until every worker has quiesced for this epoch. A worker acks only
	// after its last ticket claim, so all jobs are both claimed and finished
	// once the coordinator's own windowWork returns and all acks match.
	for i := range e.acks {
		for spins := 0; e.acks[i].Load() != ep; spins++ {
			if spins > spinBudget {
				runtime.Gosched()
			}
		}
	}
}

// wideLimit returns the dynamic window bound for a lone active partition p:
// the earliest time any other partition's queued work could reach p through
// the link graph. The first hop of every such chain honours both the source's
// head event and the link's next-send bound; the rest of the chain is bounded
// by the latency closure. While p runs, its own emissions tighten the bound
// further (Remote.Schedule collapses p's curLimit through the same closure),
// so nothing p does can be disturbed retroactively. With no other pending
// work and no emissions, p simply runs to completion in one window.
func (e *Engine) wideLimit(p *Partition, limit Time) Time {
	w := TimeInf
	for _, r := range e.cross {
		if r.src == p || len(r.src.queue) == 0 {
			continue
		}
		b := satAdd(r.src.queue[0].time, r.latency)
		if r.nextSend > b {
			b = r.nextSend
		}
		if b = satAdd(b, e.dist[r.dst.idx][p.idx]); b < w {
			w = b
		}
	}
	if e.maxTime != TimeInf && w > e.maxTime {
		w = e.maxTime + 1
	}
	if w < limit {
		return limit
	}
	return w
}

// spinBudget is how many times a barrier loop polls before yielding the OS
// thread. Windows are microseconds apart, so a short busy wait almost always
// wins; the Gosched fallback keeps GOMAXPROCS=1 runs live.
const spinBudget = 256

// windowWork claims partitions off the shared ticket until the window's job
// list is exhausted. Claim order is irrelevant to results: partitions only
// touch their own state inside a window.
func (e *Engine) windowWork() {
	for {
		i := e.ticket.Add(1) - 1
		if i >= int64(len(e.jobs)) {
			return
		}
		e.jobs[i].window(e.limit)
	}
}

// worker spins between window barriers: it waits for the coordinator to bump
// the epoch, grabs partitions off the ticket, then acks the epoch to signal
// it will no longer touch the job list.
func (e *Engine) worker(idx int, last int64) {
	defer e.workers.Done()
	for {
		ep := e.epoch.Load()
		if ep == last {
			for spins := 0; e.epoch.Load() == last; spins++ {
				if spins > spinBudget {
					runtime.Gosched()
				}
			}
			continue
		}
		if e.stop.Load() {
			return
		}
		last = ep
		e.windowWork()
		e.acks[idx].Store(ep)
	}
}

// drainRemotes merges the window's cross-partition batches into the
// destination queues. Only links that actually carried traffic are visited
// (each source partition keeps a dirty-link list), entries arrive already
// stamped with source-assigned sequence numbers, and the emptied buffers
// return to the source partition's pool for the next window. Merge order is
// irrelevant to results — the (time, seq) order was fixed at emission — but
// stays deterministic anyway (partition then dirty order).
func (e *Engine) drainRemotes() {
	for _, p := range e.parts {
		if len(p.dirty) == 0 {
			continue
		}
		for di, r := range p.dirty {
			buf := r.buf
			r.buf = nil
			e.crossMsgs += uint64(len(buf))
			for i := range buf {
				r.dst.enqueueStamped(buf[i].time, buf[i].seq, buf[i].evt)
				buf[i] = remoteEntry{} // release the Event reference
			}
			p.pool = append(p.pool, buf[:0])
			p.dirty[di] = nil
		}
		p.dirty = p.dirty[:0]
	}
}

// windowError picks the earliest failure of the last window in the global
// (time, seq) order, matching what a fully serial run would have hit first.
func (e *Engine) windowError() error {
	var best *Partition
	for _, p := range e.parts {
		if p.err == nil {
			continue
		}
		if best == nil || p.errTime < best.errTime ||
			(p.errTime == best.errTime && p.errSeq < best.errSeq) {
			best = p
		}
	}
	if best == nil {
		return nil
	}
	return best.err
}

// RegisterMetrics exposes the engine's event-loop and window-scheduler
// counters under prefix (conventionally "sim"). The closures aggregate over
// partitions at snapshot time, so a snapshot always reflects the state at
// snapshot time. Every value is a pure function of simulation content — the
// window counts derive from the deterministic job lists, never from worker
// scheduling — so snapshots are byte-identical across core counts.
func (e *Engine) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/cycles", func() uint64 { return uint64(e.Now()) })
	reg.CounterFunc(prefix+"/events_handled", func() uint64 { return e.EventCount() })
	reg.CounterFunc(prefix+"/events_scheduled", func() uint64 {
		var n uint64
		for _, p := range e.parts {
			n += p.scheduled
		}
		return n
	})
	reg.GaugeFunc(prefix+"/events_pending", func() float64 { return float64(e.Pending()) })
	reg.CounterFunc(prefix+"/windows", func() uint64 { return e.windows })
	reg.CounterFunc(prefix+"/remote_msgs", func() uint64 { return e.crossMsgs })
	reg.CounterFunc(prefix+"/barrier_spins", func() uint64 { return e.barrierWins })
	reg.CounterFunc(prefix+"/serial_fallback_windows", func() uint64 { return e.serialWins })
	reg.DistributionFunc(prefix+"/events_per_window", e.evw.Value)
}
