// Package sim provides a deterministic discrete-event simulation kernel in
// the style of MGSim: an event engine, components that handle events, ports
// with bounded buffers, and connections that move messages between ports
// with configurable timing.
//
// Time is measured in integer cycles. The multi-GPU platform built on top of
// this package runs everything in a single 1 GHz clock domain, matching the
// configuration in the paper (Table VII), so one cycle corresponds to 1 ns.
//
// # Conservative parallel execution
//
// The engine is split into partitions (one per GPU plus a hub for the shared
// fabric in the platform's use). Each partition owns a private event queue
// and clock; components belong to exactly one partition and schedule only on
// it. Cross-partition traffic travels over Remote links that declare a
// minimum latency at construction. Run advances all partitions window by
// window: with T the earliest pending event anywhere and L the minimum
// cross-partition link latency, every partition may safely process its local
// events with time < T+L, because no event created inside the window can
// land before T+L. Windows execute concurrently on up to WithCores workers;
// the barrier between windows merges Remote traffic into the destination
// queues in a fixed link order. Event order inside a partition is the
// (time, seq) total order, and seq is a pure function of the partition index
// and the partition-local schedule count — never of goroutine scheduling —
// so a run's observable behaviour is byte-identical for any core count.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mgpucompress/internal/metrics"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// TimeInf is a sentinel for "never".
const TimeInf Time = math.MaxUint64

// Event is something that happens at a point in simulated time. Events are
// totally ordered by (time, secondary ID) so simulation runs are
// deterministic regardless of scheduling order.
type Event interface {
	// Time returns when the event happens.
	Time() Time
	// Handler returns the handler that should process the event.
	Handler() Handler
}

// Handler processes events.
type Handler interface {
	Handle(e Event) error
}

// EventBase provides a canonical Event implementation to embed in concrete
// event types.
type EventBase struct {
	EvtTime    Time
	EvtHandler Handler
}

// NewEventBase builds an EventBase for the given time and handler.
func NewEventBase(t Time, h Handler) EventBase {
	return EventBase{EvtTime: t, EvtHandler: h}
}

// Time returns when the event happens.
func (e EventBase) Time() Time { return e.EvtTime }

// Handler returns the handler that processes the event.
func (e EventBase) Handler() Handler { return e.EvtHandler }

// queuedEvent is one pending entry. The time is cached so ordering never
// calls through the Event interface, and lightweight ticks scheduled with
// ScheduleTick carry only a Handler (evt is nil), avoiding the interface
// boxing allocation that scheduling a concrete event value would cost.
type queuedEvent struct {
	time Time
	seq  uint64 // tie-breaker for determinism
	evt  Event  // nil for lightweight ticks
	h    Handler
}

func (q queuedEvent) less(o queuedEvent) bool {
	if q.time != o.time {
		return q.time < o.time
	}
	return q.seq < o.seq
}

// eventQueue is a hand-rolled 4-ary min-heap over queuedEvent. Compared to
// container/heap it is monomorphic (no `any` boxing, no interface-method
// dispatch per comparison) and shallower (4 children per node), which
// matters because every simulated event passes through it. The order is the
// same (time, seq) total order the binary heap used, so runs stay
// deterministic.
type eventQueue []queuedEvent

func (q *eventQueue) push(qe queuedEvent) {
	h := append(*q, qe)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !qe.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = qe
	*q = h
}

func (q *eventQueue) pop() queuedEvent {
	h := *q
	top := h[0]
	last := h[len(h)-1]
	h[len(h)-1] = queuedEvent{} // release the Event/Handler references
	h = h[:len(h)-1]
	n := len(h)
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].less(h[m]) {
					m = j
				}
			}
			if !h[m].less(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	*q = h
	return top
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithPartitions splits the engine into n independently clocked event queues
// (default 1). Components are built against one Partition each; traffic
// between partitions must travel over Remote links (see Engine.Link).
func WithPartitions(n int) Option {
	if n < 1 {
		panic("sim: WithPartitions needs at least 1 partition")
	}
	return func(e *Engine) { e.npart = n }
}

// WithCores sets how many OS-level workers advance partitions concurrently
// inside each lookahead window (default 1, i.e. fully serial execution).
// Results are byte-identical for any value.
func WithCores(n int) Option {
	if n < 1 {
		panic("sim: WithCores needs at least 1 core")
	}
	return func(e *Engine) { e.cores = n }
}

// WithLookahead pins the window width instead of deriving it from the
// minimum cross-partition link latency. A value larger than the derived
// minimum would break conservative safety, so Run panics on it; smaller
// values are safe (they only add barriers).
func WithLookahead(t Time) Option {
	if t == 0 {
		panic("sim: WithLookahead needs a nonzero window")
	}
	return func(e *Engine) { e.explicitLA = t }
}

// Engine drives the simulation: it owns the partitions, the cross-partition
// links, and the windowed run loop. Scheduling happens on Partitions, never
// on the Engine itself. Run/RunUntil must be called from host code (outside
// event handlers), one call at a time.
type Engine struct {
	parts   []*Partition
	remotes []*Remote

	npart      int
	cores      int
	explicitLA Time
	maxTime    Time
	running    bool

	// Window-barrier state for the spinning worker pool. A macro run with a
	// two-cycle lookahead crosses tens of thousands of window barriers, so
	// workers spin on the epoch counter between windows instead of parking on
	// a channel: a futex wake/sleep round trip per window would cost more
	// than the window's own work. jobs and limit are plain fields published
	// by the epoch increment and fenced off by the per-worker acks, which the
	// coordinator waits on before touching them again.
	jobs    []*Partition
	limit   Time
	epoch   atomic.Int64
	ticket  atomic.Int64
	stop    atomic.Bool
	acks    []atomic.Int64
	workers sync.WaitGroup
}

// NewEngine creates an engine at time 0. With no options it has a single
// partition and runs serially, which reproduces the classic single-queue
// discrete-event kernel exactly.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{npart: 1, cores: 1, maxTime: TimeInf}
	for _, opt := range opts {
		opt(e)
	}
	e.parts = make([]*Partition, e.npart)
	for i := range e.parts {
		e.parts[i] = &Partition{eng: e, idx: i}
	}
	return e
}

// Partition returns partition i.
func (e *Engine) Partition(i int) *Partition { return e.parts[i] }

// Partitions returns the number of partitions.
func (e *Engine) Partitions() int { return len(e.parts) }

// Link declares a scheduling channel from src to dst whose events always run
// at least minLatency cycles after the source's current time. Cross-partition
// links (src != dst) define the conservative lookahead: the run loop's window
// width is the minimum of their latencies. A link with src == dst is a
// convenience for components wired symmetrically against local and remote
// peers; it enforces the same latency floor but adds no synchronization.
func (e *Engine) Link(src, dst *Partition, minLatency Time) *Remote {
	if src.eng != e || dst.eng != e {
		panic("sim: Link across engines")
	}
	if src != dst && minLatency == 0 {
		panic("sim: cross-partition link needs a nonzero minimum latency")
	}
	r := &Remote{src: src, dst: dst, latency: minLatency}
	e.remotes = append(e.remotes, r)
	return r
}

// Now returns the current simulated time: the furthest any partition has
// advanced. With one partition this is exactly the classic engine clock.
func (e *Engine) Now() Time {
	var now Time
	for _, p := range e.parts {
		if p.now > now {
			now = p.now
		}
	}
	return now
}

// EventCount returns the number of events handled so far, over all
// partitions.
func (e *Engine) EventCount() uint64 {
	var n uint64
	for _, p := range e.parts {
		n += p.handled
	}
	return n
}

// Pending returns the number of events waiting across all partitions.
func (e *Engine) Pending() int {
	n := 0
	for _, p := range e.parts {
		n += len(p.queue)
	}
	return n
}

// SetMaxTime makes Run stop once simulated time would exceed the deadline.
// Events at exactly the deadline still run.
func (e *Engine) SetMaxTime(t Time) { e.maxTime = t }

// lookahead returns the effective window width: the minimum cross-partition
// link latency, optionally tightened by WithLookahead. TimeInf (no cross
// links) means every partition runs to completion independently.
func (e *Engine) lookahead() Time {
	derived := TimeInf
	for _, r := range e.remotes {
		if r.src != r.dst && r.latency < derived {
			derived = r.latency
		}
	}
	if e.explicitLA != 0 {
		if e.explicitLA > derived {
			panic(fmt.Sprintf("sim: explicit lookahead %d exceeds minimum link latency %d", e.explicitLA, derived))
		}
		return e.explicitLA
	}
	return derived
}

// Run processes events in time order until every queue drains, a partition
// pauses, or the max-time deadline passes. It returns the first handler
// error in the global (time, seq) order. Events past the deadline stay
// queued so a later Run with a larger deadline can resume.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	for _, p := range e.parts {
		p.stopped = false
		p.err = nil
	}
	e.running = true
	defer func() { e.running = false }()

	la := e.lookahead()
	if n := e.extraWorkers(); n > 0 {
		e.stop.Store(false)
		e.acks = make([]atomic.Int64, n)
		base := e.epoch.Load()
		for i := 0; i < n; i++ {
			e.acks[i].Store(base)
			e.workers.Add(1)
			go e.worker(i, base)
		}
		defer func() {
			e.stop.Store(true)
			e.epoch.Add(1) // release spinners so they observe stop
			e.workers.Wait()
			e.acks = nil
		}()
	}

	for {
		e.drainRemotes()
		limit, ok := e.nextWindow(la)
		if !ok {
			return nil
		}
		e.runWindow(limit)
		e.drainRemotes()
		if err := e.windowError(); err != nil {
			return err
		}
		for _, p := range e.parts {
			if p.stopped {
				return nil
			}
		}
	}
}

// RunUntil runs events up to and including time t.
func (e *Engine) RunUntil(t Time) error {
	saved := e.maxTime
	e.maxTime = t
	err := e.Run()
	e.maxTime = saved
	return err
}

// nextWindow computes the exclusive upper bound of the next window, or
// reports false when nothing runnable remains under the deadline.
func (e *Engine) nextWindow(la Time) (Time, bool) {
	t := TimeInf
	for _, p := range e.parts {
		if len(p.queue) > 0 && p.queue[0].time < t {
			t = p.queue[0].time
		}
	}
	if t == TimeInf || t > e.maxTime {
		return 0, false
	}
	limit := TimeInf
	if la < TimeInf-t {
		limit = t + la
	}
	if e.maxTime != TimeInf && limit > e.maxTime {
		limit = e.maxTime + 1 // events at exactly the deadline still run
	}
	return limit, true
}

// extraWorkers returns how many worker goroutines a Run should start, on top
// of the coordinator itself (0 = run windows inline on the caller). The
// coordinator always participates in window work, so cores=2 means one extra
// worker.
func (e *Engine) extraWorkers() int {
	if e.cores <= 1 || len(e.parts) == 1 {
		return 0
	}
	n := e.cores
	if n > len(e.parts) {
		n = len(e.parts)
	}
	return n - 1
}

// runWindow advances every partition with work under the limit. Partitions
// never touch each other's state inside a window (cross traffic sits in
// Remote outboxes until the barrier), so dispatch order — and the worker
// count — cannot influence results.
func (e *Engine) runWindow(limit Time) {
	if e.acks == nil {
		for _, p := range e.parts {
			if len(p.queue) > 0 && p.queue[0].time < limit {
				p.window(limit)
			}
		}
		return
	}
	e.jobs = e.jobs[:0]
	for _, p := range e.parts {
		if len(p.queue) > 0 && p.queue[0].time < limit {
			e.jobs = append(e.jobs, p)
		}
	}
	if len(e.jobs) == 1 {
		// A lone active partition (serial phases, drained tails) skips the
		// barrier round trip entirely.
		e.jobs[0].window(limit)
		return
	}
	e.limit = limit
	e.ticket.Store(0)
	ep := e.epoch.Add(1) // publishes jobs/limit to the spinning workers
	e.windowWork()
	// Wait until every worker has quiesced for this epoch. A worker acks only
	// after its last ticket claim, so all jobs are both claimed and finished
	// once the coordinator's own windowWork returns and all acks match.
	for i := range e.acks {
		for spins := 0; e.acks[i].Load() != ep; spins++ {
			if spins > spinBudget {
				runtime.Gosched()
			}
		}
	}
}

// spinBudget is how many times a barrier loop polls before yielding the OS
// thread. Windows are microseconds apart, so a short busy wait almost always
// wins; the Gosched fallback keeps GOMAXPROCS=1 runs live.
const spinBudget = 256

// windowWork claims partitions off the shared ticket until the window's job
// list is exhausted. Claim order is irrelevant to results: partitions only
// touch their own state inside a window.
func (e *Engine) windowWork() {
	for {
		i := e.ticket.Add(1) - 1
		if i >= int64(len(e.jobs)) {
			return
		}
		e.jobs[i].window(e.limit)
	}
}

// worker spins between window barriers: it waits for the coordinator to bump
// the epoch, grabs partitions off the ticket, then acks the epoch to signal
// it will no longer touch the job list.
func (e *Engine) worker(idx int, last int64) {
	defer e.workers.Done()
	for {
		ep := e.epoch.Load()
		if ep == last {
			for spins := 0; e.epoch.Load() == last; spins++ {
				if spins > spinBudget {
					runtime.Gosched()
				}
			}
			continue
		}
		if e.stop.Load() {
			return
		}
		last = ep
		e.windowWork()
		e.acks[idx].Store(ep)
	}
}

// drainRemotes merges every link's outbox into its destination queue. Link
// order and outbox order are both deterministic (creation order and source
// processing order), so the sequence numbers the destination assigns are
// too.
func (e *Engine) drainRemotes() {
	for _, r := range e.remotes {
		for i, entry := range r.buf {
			r.dst.enqueue(entry.time, entry.evt, nil)
			r.buf[i] = remoteEntry{}
		}
		r.buf = r.buf[:0]
	}
}

// windowError picks the earliest failure of the last window in the global
// (time, seq) order, matching what a fully serial run would have hit first.
func (e *Engine) windowError() error {
	var best *Partition
	for _, p := range e.parts {
		if p.err == nil {
			continue
		}
		if best == nil || p.errTime < best.errTime ||
			(p.errTime == best.errTime && p.errSeq < best.errSeq) {
			best = p
		}
	}
	if best == nil {
		return nil
	}
	return best.err
}

// RegisterMetrics exposes the engine's event-loop counters under prefix
// (conventionally "sim"). The closures aggregate over partitions at snapshot
// time, so a snapshot always reflects the state at snapshot time.
func (e *Engine) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/cycles", func() uint64 { return uint64(e.Now()) })
	reg.CounterFunc(prefix+"/events_handled", func() uint64 { return e.EventCount() })
	reg.CounterFunc(prefix+"/events_scheduled", func() uint64 {
		var n uint64
		for _, p := range e.parts {
			n += p.scheduled
		}
		return n
	})
	reg.GaugeFunc(prefix+"/events_pending", func() float64 { return float64(e.Pending()) })
}
