// Package sim provides a deterministic discrete-event simulation kernel in
// the style of MGSim: an event engine, components that handle events, ports
// with bounded buffers, and connections that move messages between ports
// with configurable timing.
//
// Time is measured in integer cycles. The multi-GPU platform built on top of
// this package runs everything in a single 1 GHz clock domain, matching the
// configuration in the paper (Table VII), so one cycle corresponds to 1 ns.
package sim

import (
	"fmt"
	"math"

	"mgpucompress/internal/metrics"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// TimeInf is a sentinel for "never".
const TimeInf Time = math.MaxUint64

// Event is something that happens at a point in simulated time. Events are
// totally ordered by (time, secondary ID) so simulation runs are
// deterministic regardless of scheduling order.
type Event interface {
	// Time returns when the event happens.
	Time() Time
	// Handler returns the handler that should process the event.
	Handler() Handler
}

// Handler processes events.
type Handler interface {
	Handle(e Event) error
}

// EventBase provides a canonical Event implementation to embed in concrete
// event types.
type EventBase struct {
	EvtTime    Time
	EvtHandler Handler
}

// NewEventBase builds an EventBase for the given time and handler.
func NewEventBase(t Time, h Handler) EventBase {
	return EventBase{EvtTime: t, EvtHandler: h}
}

// Time returns when the event happens.
func (e EventBase) Time() Time { return e.EvtTime }

// Handler returns the handler that processes the event.
func (e EventBase) Handler() Handler { return e.EvtHandler }

// queuedEvent is one pending entry. The time is cached so ordering never
// calls through the Event interface, and lightweight ticks scheduled with
// ScheduleTick carry only a Handler (evt is nil), avoiding the interface
// boxing allocation that scheduling a concrete event value would cost.
type queuedEvent struct {
	time Time
	seq  uint64 // tie-breaker for determinism
	evt  Event  // nil for lightweight ticks
	h    Handler
}

func (q queuedEvent) less(o queuedEvent) bool {
	if q.time != o.time {
		return q.time < o.time
	}
	return q.seq < o.seq
}

// eventQueue is a hand-rolled 4-ary min-heap over queuedEvent. Compared to
// container/heap it is monomorphic (no `any` boxing, no interface-method
// dispatch per comparison) and shallower (4 children per node), which
// matters because every simulated event passes through it. The order is the
// same (time, seq) total order the binary heap used, so runs stay
// deterministic.
type eventQueue []queuedEvent

func (q *eventQueue) push(qe queuedEvent) {
	h := append(*q, qe)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !qe.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = qe
	*q = h
}

func (q *eventQueue) pop() queuedEvent {
	h := *q
	top := h[0]
	last := h[len(h)-1]
	h[len(h)-1] = queuedEvent{} // release the Event/Handler references
	h = h[:len(h)-1]
	n := len(h)
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].less(h[m]) {
					m = j
				}
			}
			if !h[m].less(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	*q = h
	return top
}

// Engine drives the simulation. It is not safe for concurrent use; the
// entire simulation runs on one goroutine, which keeps runs deterministic.
type Engine struct {
	queue     eventQueue
	now       Time
	seq       uint64
	scheduled uint64
	handled   uint64
	paused    bool
	maxTime   Time
	msgID     uint64
	// tick is the reusable event dispatched for ScheduleTick entries. It is
	// rewritten before every lightweight dispatch, so handlers must not
	// retain it past Handle.
	tick TickEvent
}

// NewEngine creates an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{maxTime: TimeInf}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventCount returns the number of events handled so far.
func (e *Engine) EventCount() uint64 { return e.handled }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues an event. Scheduling an event in the past panics: it is
// always a model bug and silently reordering would corrupt results.
func (e *Engine) Schedule(evt Event) {
	t := evt.Time()
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.scheduled++
	e.queue.push(queuedEvent{time: t, seq: e.seq, evt: evt})
}

// ScheduleTick enqueues a lightweight tick for h at time t without
// allocating: the handler receives a reusable *TickEvent owned by the
// engine, valid only for the duration of Handle. It shares Schedule's
// (time, seq) order and counters, so a run is indistinguishable from one
// that scheduled equivalent TickEvent values.
func (e *Engine) ScheduleTick(t Time, h Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling tick at %d before now %d", t, e.now))
	}
	e.seq++
	e.scheduled++
	e.queue.push(queuedEvent{time: t, seq: e.seq, h: h})
}

// Pause stops Run before the next event is dispatched. It may be called from
// inside an event handler.
func (e *Engine) Pause() { e.paused = true }

// SetMaxTime makes Run stop once simulated time would exceed the deadline.
// Events at exactly the deadline still run.
func (e *Engine) SetMaxTime(t Time) { e.maxTime = t }

// Run processes events in time order until the queue drains, Pause is
// called, or the max-time deadline passes. It returns the first handler
// error encountered.
func (e *Engine) Run() error {
	e.paused = false
	for len(e.queue) > 0 && !e.paused {
		// Peek first: an event past the deadline stays queued so a later
		// Run with a larger deadline can resume.
		if e.queue[0].time > e.maxTime {
			return nil
		}
		next := e.queue.pop()
		t := next.time
		e.now = t
		e.handled++
		var err error
		if next.evt != nil {
			err = next.evt.Handler().Handle(next.evt)
		} else {
			e.tick = TickEvent{EventBase: NewEventBase(t, next.h)}
			err = next.h.Handle(&e.tick)
		}
		if err != nil {
			return fmt.Errorf("sim: event at %d: %w", t, err)
		}
	}
	return nil
}

// RegisterMetrics exposes the engine's event-loop counters under prefix
// (conventionally "sim"). The closures read the engine's live fields, so a
// snapshot always reflects the state at snapshot time.
func (e *Engine) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/cycles", func() uint64 { return uint64(e.now) })
	reg.CounterFunc(prefix+"/events_handled", func() uint64 { return e.handled })
	reg.CounterFunc(prefix+"/events_scheduled", func() uint64 { return e.scheduled })
	reg.GaugeFunc(prefix+"/events_pending", func() float64 { return float64(len(e.queue)) })
}

// RunUntil runs events up to and including time t.
func (e *Engine) RunUntil(t Time) error {
	saved := e.maxTime
	e.maxTime = t
	err := e.Run()
	e.maxTime = saved
	return err
}
