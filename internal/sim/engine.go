// Package sim provides a deterministic discrete-event simulation kernel in
// the style of MGSim: an event engine, components that handle events, ports
// with bounded buffers, and connections that move messages between ports
// with configurable timing.
//
// Time is measured in integer cycles. The multi-GPU platform built on top of
// this package runs everything in a single 1 GHz clock domain, matching the
// configuration in the paper (Table VII), so one cycle corresponds to 1 ns.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"mgpucompress/internal/metrics"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// TimeInf is a sentinel for "never".
const TimeInf Time = math.MaxUint64

// Event is something that happens at a point in simulated time. Events are
// totally ordered by (time, secondary ID) so simulation runs are
// deterministic regardless of scheduling order.
type Event interface {
	// Time returns when the event happens.
	Time() Time
	// Handler returns the handler that should process the event.
	Handler() Handler
}

// Handler processes events.
type Handler interface {
	Handle(e Event) error
}

// EventBase provides a canonical Event implementation to embed in concrete
// event types.
type EventBase struct {
	EvtTime    Time
	EvtHandler Handler
}

// NewEventBase builds an EventBase for the given time and handler.
func NewEventBase(t Time, h Handler) EventBase {
	return EventBase{EvtTime: t, EvtHandler: h}
}

// Time returns when the event happens.
func (e EventBase) Time() Time { return e.EvtTime }

// Handler returns the handler that processes the event.
func (e EventBase) Handler() Handler { return e.EvtHandler }

type queuedEvent struct {
	evt Event
	seq uint64 // tie-breaker for determinism
}

type eventHeap []queuedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	ti, tj := h[i].evt.Time(), h[j].evt.Time()
	if ti != tj {
		return ti < tj
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(queuedEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine drives the simulation. It is not safe for concurrent use; the
// entire simulation runs on one goroutine, which keeps runs deterministic.
type Engine struct {
	queue     eventHeap
	now       Time
	seq       uint64
	scheduled uint64
	handled   uint64
	paused    bool
	maxTime   Time
}

// NewEngine creates an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{maxTime: TimeInf}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventCount returns the number of events handled so far.
func (e *Engine) EventCount() uint64 { return e.handled }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues an event. Scheduling an event in the past panics: it is
// always a model bug and silently reordering would corrupt results.
func (e *Engine) Schedule(evt Event) {
	if evt.Time() < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", evt.Time(), e.now))
	}
	e.seq++
	e.scheduled++
	heap.Push(&e.queue, queuedEvent{evt: evt, seq: e.seq})
}

// Pause stops Run before the next event is dispatched. It may be called from
// inside an event handler.
func (e *Engine) Pause() { e.paused = true }

// SetMaxTime makes Run stop once simulated time would exceed the deadline.
// Events at exactly the deadline still run.
func (e *Engine) SetMaxTime(t Time) { e.maxTime = t }

// Run processes events in time order until the queue drains, Pause is
// called, or the max-time deadline passes. It returns the first handler
// error encountered.
func (e *Engine) Run() error {
	e.paused = false
	for len(e.queue) > 0 && !e.paused {
		next := heap.Pop(&e.queue).(queuedEvent)
		t := next.evt.Time()
		if t > e.maxTime {
			// Put it back so a later Run with a larger deadline can resume.
			heap.Push(&e.queue, next)
			return nil
		}
		e.now = t
		e.handled++
		if err := next.evt.Handler().Handle(next.evt); err != nil {
			return fmt.Errorf("sim: event at %d: %w", t, err)
		}
	}
	return nil
}

// RegisterMetrics exposes the engine's event-loop counters under prefix
// (conventionally "sim"). The closures read the engine's live fields, so a
// snapshot always reflects the state at snapshot time.
func (e *Engine) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/cycles", func() uint64 { return uint64(e.now) })
	reg.CounterFunc(prefix+"/events_handled", func() uint64 { return e.handled })
	reg.CounterFunc(prefix+"/events_scheduled", func() uint64 { return e.scheduled })
	reg.GaugeFunc(prefix+"/events_pending", func() float64 { return float64(len(e.queue)) })
}

// RunUntil runs events up to and including time t.
func (e *Engine) RunUntil(t Time) error {
	saved := e.maxTime
	e.maxTime = t
	err := e.Run()
	e.maxTime = saved
	return err
}
