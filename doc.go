// Package mgpucompress reproduces "Exploiting Adaptive Data Compression to
// Improve Performance and Energy-Efficiency of Compute Workloads in
// Multi-GPU Systems" (Khavari Tavana, Sun, Bohm Agostini, Kaeli — IPDPS
// Workshops 2019) as a self-contained Go library: an event-driven 4-GPU
// simulator, bit-accurate FPC/BDI/C-Pack+Z codecs, the adaptive inter-GPU
// compression controller, the seven Table IV workloads, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package mgpucompress
