# Convenience targets; everything is plain `go` underneath.

.PHONY: all ci lint lint-baseline test short race cover fuzz-smoke bench bench-smoke serve-smoke serve-load reproduce ablations examples fmt vet

# Packages whose hot paths must stay clean of lint suppressions: the
# zero-allocation fast paths are exactly where a silenced analyzer would
# hide a determinism bug.
HOT_PKGS := internal/bitstream internal/comp internal/sim

all: vet lint test

# Everything a pre-merge check needs: formatting, vet, the project's own
# determinism linter, the short test suite under the race detector (the
# sweep engine is concurrent by design), and the metrics determinism gate:
# the quickstart's -metrics-out snapshot must be byte-identical across runs.
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...
	@mkdir -p bin
	go build -o bin/mgpulint ./cmd/mgpulint
	./bin/mgpulint -sarif bin/mgpulint.sarif -baseline lint-baseline.json ./...
	go test -race -short ./...
	@if grep -rn "lint:ignore" $(HOT_PKGS); then \
		echo "hot-path packages must not carry lint:ignore suppressions"; exit 1; \
	fi
	@echo "hot-path lint-suppression gate: OK"
	$(MAKE) cover
	$(MAKE) fuzz-smoke
	$(MAKE) bench-smoke
	$(MAKE) serve-smoke
	@mkdir -p bin
	go run ./examples/quickstart -metrics-out bin/metrics-a.json >/dev/null
	go run ./examples/quickstart -metrics-out bin/metrics-b.json >/dev/null
	cmp bin/metrics-a.json bin/metrics-b.json
	@echo "metrics determinism gate: OK"
	go run ./examples/quickstart -sim-cores 8 -metrics-out bin/metrics-p.json >/dev/null
	cmp bin/metrics-a.json bin/metrics-p.json
	@echo "parallel determinism gate (-sim-cores 1 vs 8): OK"
	@for topo in bus crossbar ring mesh tree; do \
		go run ./cmd/mgpucomp -bench SC -policy adaptive -lambda 6 -scale 1 \
			-topology $$topo -gpus 8 -sim-cores 1 -metrics-out bin/topo-a.json >/dev/null || exit 1; \
		go run ./cmd/mgpucomp -bench SC -policy adaptive -lambda 6 -scale 1 \
			-topology $$topo -gpus 8 -sim-cores 8 -metrics-out bin/topo-b.json >/dev/null || exit 1; \
		cmp bin/topo-a.json bin/topo-b.json || { echo "$$topo: parallel run diverged"; exit 1; }; \
		echo "  $$topo @ 8 GPUs: OK"; \
	done
	@echo "topology smoke matrix (-sim-cores 1 vs 8, 8 GPUs): OK"

# mgpulint: the determinism- and invariant-checking analyzers of
# internal/analysis (see DESIGN.md "Determinism rules").
lint:
	go run ./cmd/mgpulint ./...

# Re-record the suppression-budget baseline (lint-baseline.json) from the
# current tree. Run this after legitimately removing findings or
# suppressions so the shrunken budget is what CI enforces; growing counts
# must never be baselined away without review.
lint-baseline:
	go run ./cmd/mgpulint -baseline lint-baseline.json -write-baseline ./...

test:
	go test ./...

short:
	go test -short ./...

race:
	go test -race ./...

# Coverage with a floor: the short suite must keep total statement coverage
# at or above COVER_FLOOR so new subsystems land with their tests.
COVER_FLOOR := 75

cover:
	@mkdir -p bin
	go test -short -coverprofile=bin/cover.out ./...
	@total=$$(go tool cover -func=bin/cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor=$(COVER_FLOOR) 'BEGIN { exit (t + 0 >= floor) ? 0 : 1 }' || \
		{ echo "total coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Short fuzz passes over the committed seed corpora (testdata/fuzz) plus ten
# seconds of new exploration per target: enough to catch encoder/bitstream
# regressions pre-merge without turning ci into a fuzzing campaign.
fuzz-smoke:
	go test ./internal/comp -run='^$$' -fuzz='^FuzzCompressedBits$$' -fuzztime=10s
	go test ./internal/bitstream -run='^$$' -fuzz='^FuzzWriteBitsDifferential$$' -fuzztime=10s
	go test ./internal/bitstream -run='^$$' -fuzz='^FuzzReadBitsDifferential$$' -fuzztime=10s

# Full benchmark pass: every Go benchmark with allocation reporting, then
# the committed hot-path report (micro numbers, baseline speedups, the
# workload × policy macro table, the -sim-cores scaling table of the
# parallel engine, the adaptive-vs-fixed window-scheduling table, and the
# topology × codec-selection table) regenerated into BENCH_PR10.json.
bench:
	go test -bench=. -benchmem ./...
	go run ./cmd/benchreport -out BENCH_PR10.json

# Cheap pre-merge benchmark smoke: one iteration of the hot-path
# microbenchmarks at the smallest scale, purely to catch benchmarks that no
# longer compile or crash — timings are meaningless at -benchtime=1x.
bench-smoke:
	BENCH_SCALE=1 go test -run='^$$' -bench=. -benchtime=1x -benchmem \
		./internal/bitstream ./internal/comp ./internal/sim

# End-to-end gate for the sweep service: build the real sweepd binary, SIGKILL
# it mid-batch, restart it on the same data directory, and require the resumed
# batch's results file to be byte-identical to an in-process oracle
# (DESIGN.md "Sweep service"). Runs under the race detector; ~1 s.
serve-smoke:
	go test -race -count=1 -run '^TestServeSmoke$$' ./cmd/sweepd

# Savina-style fan-out/fan-in load gate for the sweepd API at full pressure:
# one large batch, many SSE consumers all dropping and resuming mid-stream.
# Every consumer must see the gapless sequence with exactly one terminal
# event, and the results artifact must match a direct internal/sweep run
# byte for byte. (`go test ./internal/serve` runs the same test at its
# default scale; -short shrinks it to a smoke.)
serve-load:
	SERVE_LOAD_JOBS=1000 SERVE_LOAD_CONSUMERS=64 \
		go test -race -count=1 -v -run '^TestServeLoad$$' ./internal/serve

reproduce:
	go run ./cmd/reproduce -out results -scale 4

ablations:
	go run ./cmd/ablations -study all -scale 2

examples:
	go run ./examples/quickstart
	go run ./examples/adaptive_tuning -bench MT -scale 1
	go run ./examples/custom_workload
	go run ./examples/compression_explorer
	go run ./examples/trace_replay

fmt:
	gofmt -w .

vet:
	go vet ./...
