# Convenience targets; everything is plain `go` underneath.

.PHONY: all test short race cover bench reproduce ablations examples fmt vet

all: vet test

test:
	go test ./...

short:
	go test -short ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

reproduce:
	go run ./cmd/reproduce -out results -scale 4

ablations:
	go run ./cmd/ablations -study all -scale 2

examples:
	go run ./examples/quickstart
	go run ./examples/adaptive_tuning -bench MT -scale 1
	go run ./examples/custom_workload
	go run ./examples/compression_explorer
	go run ./examples/trace_replay

fmt:
	gofmt -w .

vet:
	go vet ./...
