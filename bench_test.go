package mgpucompress_test

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark runs the corresponding experiment end to end on the
// simulated 4-GPU platform and prints the same rows/series the paper
// reports (once, on the first iteration). Shapes — which codec wins, by
// roughly what factor, where the crossovers fall — are the reproduction
// target; absolute cycle counts belong to our simulator, not the authors'
// testbed.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// BENCH_SCALE (default 2) and BENCH_CUS (default 4) tune experiment size.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/workloads"
)

func benchOpts() runner.ExpOptions {
	scale := 2
	if s := os.Getenv("BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			scale = v
		}
	}
	cus := 4
	if s := os.Getenv("BENCH_CUS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			cus = v
		}
	}
	return runner.ExpOptions{Scale: workloads.Scale(scale), CUsPerGPU: cus}
}

// newSweep builds a fresh sweep session so every benchmark iteration
// simulates its jobs (a shared session would turn iterations 2..N into pure
// cache hits). Within one iteration the engine still deduplicates: an
// artifact's shared runs are simulated once and fan out across GOMAXPROCS
// workers.
func newSweep() *runner.Sweep {
	return runner.NewSweep(runner.SweepConfig{})
}

var printOnce sync.Map

func printFirst(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// BenchmarkTable1PatternSupport regenerates Table I (static property of the
// codecs; benchmarked for completeness of the per-table index).
func BenchmarkTable1PatternSupport(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, p := range comp.AllDataPatterns() {
			out += fmt.Sprintf("%-20s %-8s %-8s %-8s\n", p,
				comp.SupportedPatterns(comp.FPC)[p],
				comp.SupportedPatterns(comp.BDI)[p],
				comp.SupportedPatterns(comp.CPackZ)[p])
		}
	}
	printFirst(b, "t1", "TABLE I:\n"+out)
}

// BenchmarkTable3CodecCosts regenerates Table III.
func BenchmarkTable3CodecCosts(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
			c := comp.CostOf(alg)
			out += fmt.Sprintf("%-9s comp %2d cy  decomp %2d cy  area %5.0f µm²  energy %5.1f pJ\n",
				alg, c.CompressionCycles, c.DecompressionCycles, c.AreaUM2, c.BlockEnergyPJ())
		}
	}
	printFirst(b, "t3", "TABLE III:\n"+out)
}

// BenchmarkTable5InterGPUCharacteristics regenerates Table V: remote access
// counts, aggregate entropy, and per-codec compression ratios for all seven
// workloads.
func BenchmarkTable5InterGPUCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().TableV(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "t5", runner.FormatTableV(rows))
	}
}

// BenchmarkTable6PatternMix regenerates Table VI: the top-3 detected
// patterns per codec per workload.
func BenchmarkTable6PatternMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().TableVI(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "t6", runner.FormatTableVI(rows))
	}
}

// BenchmarkFig1TemporalSeries regenerates Fig. 1: per-transfer entropy and
// per-codec compressed sizes for 500 consecutive inter-GPU transfers of SC
// and FIR, summarized per phase.
func BenchmarkFig1TemporalSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := newSweep()
		for _, bench := range runner.Fig1Benchmarks() {
			s, err := sw.Fig1(bench, 500, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			phases := runner.SummarizeFig1Phases(s)
			out := fmt.Sprintf("Fig. 1 (%s), %d transfers — mean compressed bytes per phase:\n",
				bench, len(s.Samples))
			for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
				p := phases[alg]
				out += fmt.Sprintf("  %-9s first half %6.1f B | second half %6.1f B\n", alg, p[0], p[1])
			}
			printFirst(b, "f1"+bench, out)
		}
	}
}

// BenchmarkFig5StaticCompression regenerates Fig. 5: normalized inter-GPU
// traffic and execution time under the static codecs.
func BenchmarkFig5StaticCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "f5",
			runner.FormatNormalized("Fig. 5", "traffic", rows)+"\n"+
				runner.FormatNormalized("Fig. 5", "time", rows))
	}
}

// BenchmarkFig6Adaptive regenerates Fig. 6: normalized traffic and execution
// time under the adaptive policy for λ ∈ {0, 6, 32}.
func BenchmarkFig6Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "f6",
			runner.FormatNormalized("Fig. 6", "traffic", rows)+"\n"+
				runner.FormatNormalized("Fig. 6", "time", rows))
	}
}

// BenchmarkFig7Energy regenerates Fig. 7: normalized fabric+codec energy for
// static and adaptive policies on the MCM-class fabric.
func BenchmarkFig7Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "f7", runner.FormatNormalized("Fig. 7", "energy", rows))
	}
}

// BenchmarkReproducePlan runs the full deduplicated cmd/reproduce job plan
// through the sweep engine at default parallelism: the end-to-end cost of
// every table and figure with shared runs simulated exactly once.
func BenchmarkReproducePlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSweep()
		if err := s.Prefetch(runner.ReproducePlan(benchOpts())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAreaOverhead regenerates the Sec. VII-C area numbers.
func BenchmarkAreaOverhead(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
			pct += energy.AreaOverheadPercent(alg)
		}
	}
	printFirst(b, "area", runner.FormatAreaOverhead())
	_ = pct
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper (design choices DESIGN.md calls out).
// ---------------------------------------------------------------------------

// BenchmarkAblationSamplingGeometry sweeps the sampling-phase parameters the
// paper fixes at 7 samples / 300 transfers.
func BenchmarkAblationSamplingGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().SamplingAblation("SC", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-sampling", runner.FormatSamplingAblation("SC", rows))
	}
}

// BenchmarkAblationSingleCodecOnOff exercises the Sec. V degenerate mode:
// one codec, adaptively switched on and off.
func BenchmarkAblationSingleCodecOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().OnOffAblation([]string{"AES", "MT"}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-onoff", runner.FormatOnOffAblation(rows))
	}
}

// BenchmarkAblationLinkClass recomputes the Fig. 7 saving across the Sec. II
// fabric integration levels.
func BenchmarkAblationLinkClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().LinkClassAblation("MT", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-link", runner.FormatLinkClassAblation("MT", rows))
	}
}

// BenchmarkAblationExtensions compares the paper's adaptive controller with
// the BPC-augmented candidate set and the dynamic-λ controller.
func BenchmarkAblationExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().ExtensionAblation(runner.Benchmarks(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-ext", runner.FormatExtensionAblation(rows))
	}
}

// BenchmarkAblationTopology compares compression's speedup on the paper's
// shared bus against a crossbar.
func BenchmarkAblationTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().TopologyAblation([]string{"BS", "MT", "SC"}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-topo", runner.FormatTopologyAblation(rows))
	}
}

// BenchmarkAblationRemoteCache composes the L1.5 remote cache (Arunkumar et
// al.) with adaptive compression.
func BenchmarkAblationRemoteCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().RemoteCacheAblation([]string{"SC", "MT", "AES"}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-l15", runner.FormatRemoteCacheAblation(rows))
	}
}

// BenchmarkAblationBandwidth sweeps the inter-GPU link width to find the
// crossover where compression stops buying time.
func BenchmarkAblationBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().BandwidthAblation("SC", benchOpts(), []int{5, 10, 20, 40, 80, 160})
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-bw", runner.FormatBandwidthAblation("SC", rows))
	}
}

// BenchmarkAblationScalability sweeps the GPU count.
func BenchmarkAblationScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSweep().ScalabilityAblation("SC", benchOpts(), []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "ab-scale", runner.FormatScalabilityAblation(rows))
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the codecs themselves (throughput per 64 B line).
// ---------------------------------------------------------------------------

func codecBench(b *testing.B, alg comp.Algorithm, line []byte) {
	c := comp.NewCompressor(alg)
	b.SetBytes(comp.LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := c.Compress(line)
		if _, err := c.Decompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func ldrLine() []byte {
	line := make([]byte, comp.LineSize)
	for i := 0; i < 8; i++ {
		v := uint64(1<<40 + i*3)
		for by := 0; by < 8; by++ {
			line[i*8+by] = byte(v >> (8 * by))
		}
	}
	return line
}

func BenchmarkCodecFPC(b *testing.B)    { codecBench(b, comp.FPC, ldrLine()) }
func BenchmarkCodecBDI(b *testing.B)    { codecBench(b, comp.BDI, ldrLine()) }
func BenchmarkCodecCPackZ(b *testing.B) { codecBench(b, comp.CPackZ, ldrLine()) }
func BenchmarkCodecBPC(b *testing.B)    { codecBench(b, comp.BPC, ldrLine()) }
