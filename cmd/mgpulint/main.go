// Command mgpulint runs the repository's determinism- and invariant-
// checking analyzers (internal/analysis) over the module: the role go vet
// plays for the language, specialized to this simulator's reproduction
// guarantees.
//
// Usage:
//
//	mgpulint [-json] [packages]
//
// Packages are directories or dir/... patterns (default ./...). Findings
// print as file:line:col: [analyzer] message, or as one JSON object per
// line with -json for programmatic consumers. The exit status is 1 when
// any finding is reported, 2 on usage or load errors, 0 otherwise.
//
// A finding is suppressed by a directive on the offending line or the line
// above:
//
//	//lint:ignore analyzer[,analyzer] reason
//
// The reason is mandatory; DESIGN.md ("Determinism rules") documents every
// analyzer and its invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/atomicmix"
	"mgpucompress/internal/analysis/detmap"
	"mgpucompress/internal/analysis/errdrop"
	"mgpucompress/internal/analysis/fatalban"
	"mgpucompress/internal/analysis/wallclock"
)

// Analyzers is the full suite, in report order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		detmap.Analyzer,
		errdrop.Analyzer,
		fatalban.Analyzer,
		wallclock.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mgpulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON finding per line")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "mgpulint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "mgpulint:", err)
		return 2
	}

	findings := analysis.Run(pkgs, Analyzers())
	cwd, _ := os.Getwd()
	for i := range findings {
		// Report paths relative to the working directory, like go vet.
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && len(rel) < len(findings[i].File) {
				findings[i].File = rel
			}
		}
		if *jsonOut {
			line, err := json.Marshal(findings[i])
			if err != nil {
				fmt.Fprintln(stderr, "mgpulint:", err)
				return 2
			}
			fmt.Fprintln(stdout, string(line))
		} else {
			fmt.Fprintln(stdout, findings[i].String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
