// Command mgpulint runs the repository's determinism- and invariant-
// checking analyzers (internal/analysis) over the module: the role go vet
// plays for the language, specialized to this simulator's reproduction
// guarantees.
//
// Usage:
//
//	mgpulint [-json] [-sarif FILE] [-baseline FILE] [-write-baseline] [packages]
//
// Packages are directories or dir/... patterns (default ./...). Findings
// print as file:line:col: [analyzer] message, or — with -json — as a
// single JSON document carrying the findings, the suppressed diagnostics,
// and the rule table. -sarif additionally writes a SARIF 2.1.0 log for
// code-scanning upload. -baseline compares the run against a committed
// suppression-budget file (lint-baseline.json) and fails when any
// analyzer's finding or suppression count grew; -write-baseline
// regenerates that file from the current run instead of checking it.
//
// The exit status is 1 when any finding is reported or the baseline is
// exceeded, 2 on usage or load errors, 0 otherwise.
//
// A finding is suppressed by a directive on the offending line or the line
// above:
//
//	//lint:ignore analyzer[,analyzer] reason
//
// The reason is mandatory; DESIGN.md ("Determinism rules") documents every
// analyzer and its invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/atomicmix"
	"mgpucompress/internal/analysis/detmap"
	"mgpucompress/internal/analysis/errdrop"
	"mgpucompress/internal/analysis/fatalban"
	"mgpucompress/internal/analysis/globalmut"
	"mgpucompress/internal/analysis/lockorder"
	"mgpucompress/internal/analysis/puretaint"
	"mgpucompress/internal/analysis/wallclock"
)

// Analyzers is the full suite, in report order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		detmap.Analyzer,
		errdrop.Analyzer,
		fatalban.Analyzer,
		wallclock.Analyzer,
		puretaint.Analyzer,
		globalmut.Analyzer,
		lockorder.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json document: everything a programmatic consumer
// needs in one object, rather than the line-per-finding stream of v1.
type jsonReport struct {
	Rules      []jsonRule         `json:"rules"`
	Findings   []analysis.Finding `json:"findings"`
	Suppressed []analysis.Finding `json:"suppressed"`
}

type jsonRule struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mgpulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the run as a single JSON document")
	sarifPath := fs.String("sarif", "", "also write a SARIF 2.1.0 log to this file")
	baselinePath := fs.String("baseline", "", "enforce the suppression-budget baseline in this file")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from this run instead of checking it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "mgpulint: -write-baseline requires -baseline FILE")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "mgpulint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "mgpulint:", err)
		return 2
	}

	analyzers := Analyzers()
	res := analysis.RunAll(pkgs, analyzers)
	cwd, _ := os.Getwd()
	relativize(res.Findings, cwd)
	relativize(res.Suppressed, cwd)

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(stderr, "mgpulint:", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, analyzers, res.Findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "mgpulint:", werr)
			return 2
		}
	}

	if *jsonOut {
		rules := make([]jsonRule, 0, len(analyzers))
		for _, a := range analyzers {
			rules = append(rules, jsonRule{ID: a.ID, Name: a.Name, Doc: a.Doc})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Rules: rules, Findings: res.Findings, Suppressed: res.Suppressed}); err != nil {
			fmt.Fprintln(stderr, "mgpulint:", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			fmt.Fprintln(stdout, f.String())
		}
	}

	exit := 0
	if len(res.Findings) > 0 {
		exit = 1
	}

	if *baselinePath != "" {
		current := analysis.MakeBaseline(res, analyzers)
		if *writeBaseline {
			if err := analysis.WriteBaseline(*baselinePath, current); err != nil {
				fmt.Fprintln(stderr, "mgpulint:", err)
				return 2
			}
		} else {
			committed, err := analysis.ReadBaseline(*baselinePath)
			if err != nil {
				fmt.Fprintln(stderr, "mgpulint:", err)
				return 2
			}
			for _, v := range committed.Check(current) {
				fmt.Fprintln(stderr, "mgpulint: baseline:", v)
				exit = 1
			}
		}
	}
	return exit
}

// relativize rewrites finding paths relative to the working directory,
// like go vet, when that is shorter.
func relativize(fs []analysis.Finding, cwd string) {
	if cwd == "" {
		return
	}
	for i := range fs {
		if rel, err := filepath.Rel(cwd, fs[i].File); err == nil && len(rel) < len(fs[i].File) {
			fs[i].File = rel
		}
	}
}
