package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mgpucompress/internal/analysis"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l.ModuleRoot
}

// TestSelfPass is the gate the Makefile's lint target enforces, expressed
// as a test: the whole module — internal/analysis itself included — must
// be free of findings across all eight analyzers.
func TestSelfPass(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{filepath.Join(moduleRoot(t), "...")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("mgpulint on the module = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed output: %s", out.String())
	}
}

// TestFixturePackagesFail: pointing the driver at an analyzer fixture must
// produce findings and exit 1 — proof the driver really loads and runs
// over testdata when asked to.
func TestFixturePackagesFail(t *testing.T) {
	root := moduleRoot(t)
	fixtures := []string{
		"internal/analysis/detmap/testdata/src/detmapfix",
		"internal/analysis/wallclock/testdata/src/sim",
		"internal/analysis/atomicmix/testdata/src/atomfix",
		"internal/analysis/fatalban/testdata/src/fatalfix",
		"internal/analysis/errdrop/testdata/src/runner",
		"internal/analysis/puretaint/testdata/src/sim",
		"internal/analysis/globalmut/testdata/src/sim",
		"internal/analysis/lockorder/testdata/src/serve",
	}
	for _, fx := range fixtures {
		var out, errOut bytes.Buffer
		code := run([]string{filepath.Join(root, fx)}, &out, &errOut)
		if code != 1 {
			t.Errorf("mgpulint %s = exit %d, want 1 (stderr: %s)", fx, code, errOut.String())
		}
		if out.Len() == 0 {
			t.Errorf("mgpulint %s printed no findings", fx)
		}
	}
}

// TestJSONOutput: -json must emit a single well-formed document carrying
// the rule table and findings with the fields tooling keys on.
func TestJSONOutput(t *testing.T) {
	root := moduleRoot(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-json", filepath.Join(root, "internal/analysis/fatalban/testdata/src/fatalfix")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON document: %v\n%s", err, out.String())
	}
	if len(rep.Rules) != len(Analyzers()) {
		t.Errorf("got %d rules, want %d", len(rep.Rules), len(Analyzers()))
	}
	for _, r := range rep.Rules {
		if r.ID == "" || r.Name == "" || r.Doc == "" {
			t.Errorf("rule missing fields: %+v", r)
		}
	}
	if len(rep.Findings) < 5 {
		t.Fatalf("got %d findings, want >= 5:\n%s", len(rep.Findings), out.String())
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" || f.Package == "" || f.ID == "" || f.Fingerprint == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestSARIFOutput: -sarif must write a schema-shaped 2.1.0 log whose
// results reference the rule table by stable ID.
func TestSARIFOutput(t *testing.T) {
	root := moduleRoot(t)
	path := filepath.Join(t.TempDir(), "out.sarif")
	var out, errOut bytes.Buffer
	code := run([]string{"-sarif", path, filepath.Join(root, "internal/analysis/fatalban/testdata/src/fatalfix")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID              string            `json:"ruleId"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("bad SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "mgpulint" {
		t.Errorf("driver name %q", run0.Tool.Driver.Name)
	}
	if len(run0.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("got %d rules, want %d", len(run0.Tool.Driver.Rules), len(Analyzers()))
	}
	if len(run0.Results) < 5 {
		t.Fatalf("got %d results, want >= 5", len(run0.Results))
	}
	for _, r := range run0.Results {
		if !strings.HasPrefix(r.RuleID, "MGL") {
			t.Errorf("result ruleId %q lacks stable MGL prefix", r.RuleID)
		}
		if r.PartialFingerprints["mgpulint/v1"] == "" {
			t.Errorf("result missing mgpulint/v1 fingerprint")
		}
	}
}

// TestBaselineRoundTrip: -write-baseline records the fixture's findings;
// re-checking against that budget passes even though findings exist, and
// a zeroed budget fails.
func TestBaselineRoundTrip(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join(root, "internal/analysis/fatalban/testdata/src/fatalfix")
	path := filepath.Join(t.TempDir(), "baseline.json")

	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", path, "-write-baseline", fixture}, &out, &errOut); code != 1 {
		t.Fatalf("write run exit %d, want 1 (findings exist)", code)
	}

	// The recorded budget covers the findings: the baseline gate itself no
	// longer adds failures (exit stays 1 only because findings print).
	errOut.Reset()
	if code := run([]string{"-baseline", path, fixture}, &out, &errOut); code != 1 {
		t.Fatalf("check run exit %d, want 1", code)
	}
	if strings.Contains(errOut.String(), "baseline:") {
		t.Errorf("budgeted findings still flagged by baseline gate: %s", errOut.String())
	}

	// A zero baseline must flag the growth.
	zero := analysis.Baseline{Version: analysis.BaselineVersion, Analyzers: map[string]analysis.BaselineEntry{}}
	if err := analysis.WriteBaseline(path, zero); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"-baseline", path, fixture}, &out, &errOut); code != 1 {
		t.Fatalf("zero-baseline run exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "exceed the baseline budget") {
		t.Errorf("zero baseline did not flag growth: %s", errOut.String())
	}
}

// TestWriteBaselineRequiresPath: -write-baseline without -baseline is a
// usage error.
func TestWriteBaselineRequiresPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-write-baseline"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestBadPatternExitsTwo: load errors are usage errors, distinct from
// findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{filepath.Join(moduleRoot(t), "no/such/dir")}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
