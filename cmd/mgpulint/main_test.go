package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mgpucompress/internal/analysis"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l.ModuleRoot
}

// TestSelfPass is the gate the Makefile's lint target enforces, expressed
// as a test: the whole module — internal/analysis itself included — must
// be free of findings.
func TestSelfPass(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{filepath.Join(moduleRoot(t), "...")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("mgpulint on the module = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed output: %s", out.String())
	}
}

// TestFixturePackagesFail: pointing the driver at an analyzer fixture must
// produce findings and exit 1 — proof the driver really loads and runs
// over testdata when asked to.
func TestFixturePackagesFail(t *testing.T) {
	root := moduleRoot(t)
	fixtures := []string{
		"internal/analysis/detmap/testdata/src/detmapfix",
		"internal/analysis/wallclock/testdata/src/sim",
		"internal/analysis/atomicmix/testdata/src/atomfix",
		"internal/analysis/fatalban/testdata/src/fatalfix",
		"internal/analysis/errdrop/testdata/src/runner",
	}
	for _, fx := range fixtures {
		var out, errOut bytes.Buffer
		code := run([]string{filepath.Join(root, fx)}, &out, &errOut)
		if code != 1 {
			t.Errorf("mgpulint %s = exit %d, want 1 (stderr: %s)", fx, code, errOut.String())
		}
		if out.Len() == 0 {
			t.Errorf("mgpulint %s printed no findings", fx)
		}
	}
}

// TestJSONOutput: -json must emit one well-formed finding object per line
// with the fields future tooling keys on.
func TestJSONOutput(t *testing.T) {
	root := moduleRoot(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-json", filepath.Join(root, "internal/analysis/fatalban/testdata/src/fatalfix")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("got %d JSON findings, want >= 5:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var f analysis.Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" || f.Package == "" {
			t.Errorf("finding missing fields: %q", line)
		}
	}
}

// TestBadPatternExitsTwo: load errors are usage errors, distinct from
// findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{filepath.Join(moduleRoot(t), "no/such/dir")}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
