// Command figures regenerates the paper's figures from simulation as data
// series / matrices:
//
//	figures -figure 1 -bench SC -n 500   compressed sizes + entropy per transfer
//	figures -figure 5                    normalized traffic & time, static codecs
//	figures -figure 6                    normalized traffic & time, adaptive λ sweep
//	figures -figure 7                    normalized energy
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	figure := flag.Int("figure", 5, "figure number: 1, 5, 6 or 7")
	bench := flag.String("bench", "SC", "benchmark for figure 1 (paper uses SC and FIR)")
	n := flag.Int("n", 500, "number of consecutive transfers for figure 1")
	scale := flag.Int("scale", int(workloads.ScaleSmall), "input scale factor")
	cus := flag.Int("cus", 0, "CUs per GPU (0 = default)")
	gpus := flag.Int("gpus", 0, "GPU count (0 = the paper's 4)")
	topology := flag.String("topology", "", "fabric topology: bus (paper), crossbar, ring, mesh or tree")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	simCores := flag.Int("sim-cores", 1, "engine workers per simulation (results are byte-identical for any value)")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
	metricsOut := flag.String("metrics-out", "", "write every job's metric snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of all jobs to this file")
	flag.Parse()

	if *simCores < 1 {
		log.Fatalf("-sim-cores must be at least 1 (got %d)", *simCores)
	}

	opts := runner.ExpOptions{Scale: workloads.Scale(*scale), CUsPerGPU: *cus, SimCores: *simCores,
		Topology: fabric.Topology(*topology), NumGPUs: *gpus}
	sw := runner.NewSweep(runner.SweepConfig{Jobs: *jobs, Trace: *traceOut != ""})
	defer func() {
		if *metricsOut != "" {
			if err := sw.WriteMetricsFile(*metricsOut); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := sw.WriteTraceFile(*traceOut); err != nil {
				log.Fatal(err)
			}
		}
	}()

	switch *figure {
	case 1:
		s, err := sw.Fig1(strings.ToUpper(*bench), *n, opts)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			fmt.Println("xfer,entropy,fpc_bytes,bdi_bytes,cpackz_bytes")
			for _, smp := range s.Samples {
				fmt.Printf("%d,%.4f,%d,%d,%d\n", smp.Index, smp.Entropy,
					smp.Size[comp.FPC], smp.Size[comp.BDI], smp.Size[comp.CPackZ])
			}
			return
		}
		fmt.Print(runner.FormatFig1(strings.ToUpper(*bench), s))
		phases := runner.SummarizeFig1Phases(s)
		fmt.Println("\nphase summary (mean compressed bytes, first half vs second half):")
		for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
			p := phases[alg]
			fmt.Printf("  %-9s %6.1f B -> %6.1f B\n", alg, p[0], p[1])
		}
	case 5:
		rows, err := sw.Fig5(opts)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			printCSV(rows)
			return
		}
		fmt.Print(runner.FormatNormalized("Fig. 5: Static Compression", "traffic", rows))
		fmt.Println()
		fmt.Print(runner.FormatNormalized("Fig. 5: Static Compression", "time", rows))
	case 6:
		rows, err := sw.Fig6(opts)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			printCSV(rows)
			return
		}
		fmt.Print(runner.FormatNormalized("Fig. 6: Adaptive Compression", "traffic", rows))
		fmt.Println()
		fmt.Print(runner.FormatNormalized("Fig. 6: Adaptive Compression", "time", rows))
	case 7:
		rows, err := sw.Fig7(opts)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			printCSV(rows)
			return
		}
		fmt.Print(runner.FormatNormalized("Fig. 7: Energy Consumption", "energy", rows))
	default:
		log.Fatalf("unknown figure %d (want 1, 5, 6 or 7)", *figure)
	}
}

// printCSV emits normalized results as CSV for plotting.
func printCSV(rows []runner.NormalizedResult) {
	fmt.Println("benchmark,policy,traffic,exec_time,energy")
	for _, r := range rows {
		fmt.Printf("%s,%s,%.4f,%.4f,%.4f\n", r.Benchmark, r.Policy, r.Traffic, r.ExecTime, r.Energy)
	}
}
