package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mgpucompress/internal/runner"
	"mgpucompress/internal/serve"
	"mgpucompress/internal/sweep"
)

// smokeKeys is the smoke batch: real (small) simulations, a few policies.
func smokeKeys() []sweep.JobKey {
	return []sweep.JobKey{
		{Workload: "AES", Policy: "none", Scale: 1},
		{Workload: "AES", Policy: "fpc", Scale: 1},
		{Workload: "BS", Policy: "bdi", Scale: 1},
		{Workload: "SC", Policy: "fpc", Scale: 1},
	}
}

// daemon is one running sweepd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches the built binary against dataDir on a kernel-chosen
// port and waits for its "listening on" line.
func startDaemon(t *testing.T, bin, dataDir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-jobs", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	})

	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before announcing its address")
			}
			t.Logf("daemon: %s", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				d.addr = strings.Fields(rest)[0]
				// Keep draining stderr so the child never blocks on a full
				// pipe.
				go func() {
					for range lines {
					}
				}()
				return d
			}
		case <-deadline:
			t.Fatal("daemon never announced its address")
		}
	}
}

func (d *daemon) client() *serve.Client {
	return &serve.Client{BaseURL: "http://" + d.addr, PollInterval: 20 * time.Millisecond}
}

// sigkill terminates the daemon the hard way — no shutdown hooks, no
// journal close — exactly the crash the resume path exists for.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = d.cmd.Process.Wait()
}

// TestServeSmoke is the end-to-end gate (make serve-smoke): build the real
// binary, run a batch of real simulations through it, and prove
//
//  1. the daemon's results file is byte-identical to an in-process run of
//     the same batch, and
//  2. a SIGKILL mid-batch followed by a restart resumes to the exact same
//     bytes.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and drives the daemon binary")
	}

	bin := filepath.Join(t.TempDir(), "sweepd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building sweepd: %v\n%s", err, out)
	}
	keys := smokeKeys()

	// The oracle: the same batch through an in-process service.
	oracleDir := t.TempDir()
	oracle, err := serve.New(serve.Config[*runner.Result]{
		Run: runner.RunJob, DataDir: oracleDir, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ost, err := oracle.Submit(serve.BatchRequest{Tenant: "oracle", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	waitDone := func(get func() (serve.BatchStatus, error)) serve.BatchStatus {
		t.Helper()
		deadline := time.Now().Add(2 * time.Minute)
		for {
			st, err := get()
			if err != nil {
				t.Fatal(err)
			}
			if st.State != serve.StateRunning {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("batch never settled: %+v", st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if st := waitDone(func() (serve.BatchStatus, error) { ob, _ := oracle.Batch(ost.ID); return ob, nil }); st.Failed != 0 {
		t.Fatalf("oracle batch = %+v", st)
	}
	want, err := os.ReadFile(filepath.Join(oracleDir, "batches", ost.ID, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	oracle.Close()

	// The daemon: submit, then SIGKILL as soon as at least one job settled
	// (on a fast box the batch may already be done — then the kill just
	// exercises settled-state restore, which must hold too).
	dataDir := t.TempDir()
	d1 := startDaemon(t, bin, dataDir)
	c1 := d1.client()
	st, err := c1.Submit(serve.BatchRequest{Tenant: "smoke", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		bs, err := c1.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if bs.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job ever completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	d1.sigkill(t)

	// Restart over the same data directory: the daemon must resume the
	// batch and finish it to the oracle's exact bytes.
	d2 := startDaemon(t, bin, dataDir)
	c2 := d2.client()
	fin, err := c2.Wait(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != serve.StateDone || fin.Failed != 0 {
		t.Fatalf("resumed batch = %+v", fin)
	}
	rc, err := c2.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("post-crash daemon results differ from the in-process oracle:\noracle:\n%s\ndaemon:\n%s", want, got)
	}

	// Warm resubmission on the restarted daemon: byte-identical again, and
	// the job lookup serves a settled record.
	st2, err := c2.Submit(serve.BatchRequest{Tenant: "smoke2", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if fin2, err := c2.Wait(st2.ID, nil); err != nil || fin2.State != serve.StateDone {
		t.Fatalf("warm batch = %+v, %v", fin2, err)
	}
	rc2, err := c2.Results(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := io.ReadAll(rc2)
	rc2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got2) {
		t.Fatal("warm resubmission results differ from the oracle")
	}
	rec, err := c2.Job(keys[0].Fingerprint())
	if err != nil || rec.Status != serve.JobOK {
		t.Fatalf("job lookup = %+v, %v", rec, err)
	}
}
