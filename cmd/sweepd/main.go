// Command sweepd is the resident sweep-orchestration daemon: it keeps one
// process-wide memoized job cache and serves simulation batches over an
// HTTP/JSON API.
//
//	sweepd -addr 127.0.0.1:8372 -data sweepd-data
//
// Clients POST batches of job keys to /v1/batches; the daemon deduplicates
// them against everything it has ever run (across batches and tenants),
// executes missing jobs on a supervised worker pool, and streams per-job
// completion events over SSE. Every batch persists a manifest, a streamed
// journal and a final results file under -data, so a killed daemon resumes
// all in-flight batches at next start without resimulating finished jobs.
// cmd/reproduce and cmd/ablations submit to a daemon with their -server
// flag.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mgpucompress/internal/runner"
	"mgpucompress/internal/serve"
	"mgpucompress/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepd: ")
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	data := flag.String("data", "sweepd-data", "persistent state directory")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*addr, *data, *jobs); err != nil {
		log.Fatal(err)
	}
}

func run(addr, data string, jobs int) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	svc, err := serve.New(serve.Config[*runner.Result]{
		Run:      runner.RunJob,
		DataDir:  data,
		Workers:  jobs,
		Describe: describe,
		Logf:     log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// The resolved address (port 0 expands here) is the line clients and the
	// smoke test wait for.
	log.Printf("listening on %s (data %s, %d workers)", ln.Addr(), data, jobs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	// Close drains in-flight jobs and flushes every batch journal; queued
	// jobs are dropped and re-created from manifests at next start.
	svc.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// describe condenses one simulation result for the SSE event stream.
func describe(r *runner.Result) *serve.JobSummary {
	s := &serve.JobSummary{
		ExecCycles:    r.ExecCycles,
		FabricBytes:   r.FabricBytes,
		MetricSamples: len(r.Snapshot),
	}
	if r.Spans != nil {
		sum := trace.Summarize(r.Spans.Spans())
		s.Spans = &sum
	}
	return s
}
