// Command tables regenerates the paper's tables from simulation:
//
//	tables -table 1     pattern support matrix (Table I)
//	tables -table 3     codec cost parameters (Table III)
//	tables -table 5     inter-GPU data characteristics (Table V)
//	tables -table 6     top detected patterns (Table VI)
//	tables -area        Sec. VII-C area overhead
package main

import (
	"flag"
	"fmt"
	"log"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")

	table := flag.Int("table", 5, "table number: 1, 3, 5 or 6")
	area := flag.Bool("area", false, "print the Sec. VII-C area overhead instead")
	scale := flag.Int("scale", int(workloads.ScaleSmall), "input scale factor")
	cus := flag.Int("cus", 0, "CUs per GPU (0 = default)")
	gpus := flag.Int("gpus", 0, "GPU count (0 = the paper's 4)")
	topology := flag.String("topology", "", "fabric topology: bus (paper), crossbar, ring, mesh or tree")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	simCores := flag.Int("sim-cores", 1, "engine workers per simulation (results are byte-identical for any value)")
	metricsOut := flag.String("metrics-out", "", "write every job's metric snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of all jobs to this file")
	flag.Parse()

	if *simCores < 1 {
		log.Fatalf("-sim-cores must be at least 1 (got %d)", *simCores)
	}

	if *area {
		fmt.Print(runner.FormatAreaOverhead())
		return
	}
	opts := runner.ExpOptions{Scale: workloads.Scale(*scale), CUsPerGPU: *cus, SimCores: *simCores,
		Topology: fabric.Topology(*topology), NumGPUs: *gpus}
	s := runner.NewSweep(runner.SweepConfig{Jobs: *jobs, Trace: *traceOut != ""})
	defer func() {
		if *metricsOut != "" {
			if err := s.WriteMetricsFile(*metricsOut); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := s.WriteTraceFile(*traceOut); err != nil {
				log.Fatal(err)
			}
		}
	}()

	switch *table {
	case 1:
		printTableI()
	case 3:
		printTableIII()
	case 5:
		rows, err := s.TableV(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(runner.FormatTableV(rows))
	case 6:
		rows, err := s.TableVI(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(runner.FormatTableVI(rows))
	default:
		log.Fatalf("unknown table %d (want 1, 3, 5 or 6)", *table)
	}
}

func printTableI() {
	fmt.Println("TABLE I: Supported data patterns by different memory compression algorithms")
	fmt.Printf("%-20s %-8s %-8s %-10s\n", "Data Patterns", "FPC", "BDI", "C-PACK+Z")
	for _, p := range comp.AllDataPatterns() {
		fmt.Printf("%-20s %-8s %-8s %-10s\n", p,
			comp.SupportedPatterns(comp.FPC)[p],
			comp.SupportedPatterns(comp.BDI)[p],
			comp.SupportedPatterns(comp.CPackZ)[p])
	}
}

func printTableIII() {
	fmt.Println("TABLE III: Cost and overhead of memory compression algorithms (7nm, 1 GHz)")
	fmt.Printf("%-10s %10s %12s %10s %10s %12s %10s\n",
		"Scheme", "Comp(cyc)", "Decomp(cyc)", "Area(µm²)", "Comp(mW)", "Decomp(mW)", "Energy(pJ)")
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		c := comp.CostOf(alg)
		fmt.Printf("%-10s %10d %12d %10.0f %10.1f %12.1f %10.1f\n",
			alg, c.CompressionCycles, c.DecompressionCycles, c.AreaUM2,
			c.CompressorMW, c.DecompressorMW, c.BlockEnergyPJ())
	}
}
