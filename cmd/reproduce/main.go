// Command reproduce regenerates every table and figure of the paper in one
// run and writes each artifact to a results directory:
//
//	reproduce -out results -scale 4
//
// All simulations are scheduled through the internal/sweep engine: the full
// job plan is deduplicated (Tables V/VI share characterization runs; Fig. 7
// re-uses every Fig. 5 and Fig. 6 run), fanned out across -jobs workers,
// and streamed to a JSONL journal. An interrupted run restarted with the
// same -resume file replays the journal and skips every finished job.
// Artifacts are byte-identical for any -jobs value.
//
// With -server the plan is submitted as one batch to a resident sweepd
// daemon instead of simulating locally: the daemon dedupes it against every
// job it has ever run, and the downloaded results journal replays into the
// local cache, so artifacts come out byte-identical either way.
//
// Produced files: table1.txt, table3.txt, table5.txt, table6.txt,
// fig1_SC.txt, fig1_FIR.txt, fig5.txt, fig6.txt, fig7.txt, area.txt and a
// summary.txt index.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/serve"
	"mgpucompress/internal/sweep"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	out := flag.String("out", "results", "output directory")
	scale := flag.Int("scale", int(workloads.ScaleSmall), "input scale factor")
	cus := flag.Int("cus", 0, "CUs per GPU (0 = default)")
	gpus := flag.Int("gpus", 0, "GPU count (0 = the paper's 4)")
	topology := flag.String("topology", "", "fabric topology: bus (paper), crossbar, ring, mesh or tree")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	resume := flag.String("resume", "", "JSONL job journal: replayed if it exists, appended to as jobs finish")
	quiet := flag.Bool("quiet", false, "suppress per-job progress lines")
	seed := flag.Int64("seed", 0, "pin every job's input seed (0 = per-job fingerprint seeds)")
	metricsOut := flag.String("metrics-out", "", "write every job's metric snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of all jobs to this file")
	faultProfile := flag.String("fault-profile", "off", "fault-injection profile: off|light|aggressive or k=v list")
	simCores := flag.Int("sim-cores", 1, "engine workers per simulation (results are byte-identical for any value)")
	server := flag.String("server", "", "sweepd base URL (e.g. http://127.0.0.1:8372): run the plan on a resident daemon instead of simulating locally")
	flag.Parse()

	if *simCores < 1 {
		log.Fatalf("-sim-cores must be at least 1 (got %d)", *simCores)
	}

	prof, err := fault.Parse(*faultProfile)
	if err != nil {
		log.Fatal(err)
	}
	if *server != "" && *traceOut != "" {
		log.Fatal("-trace-out requires local execution: results fetched from a daemon carry no span timeline")
	}
	o := runner.ExpOptions{Scale: workloads.Scale(*scale), CUsPerGPU: *cus, Seed: *seed, Fault: prof,
		SimCores: *simCores, Topology: fabric.Topology(*topology), NumGPUs: *gpus}
	if err := run(*out, *jobs, o, *resume, *quiet, *metricsOut, *traceOut, *server); err != nil {
		log.Fatal(err)
	}
}

func run(out string, jobs int, o runner.ExpOptions, resume string, quiet bool, metricsOut, traceOut, server string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	scale := int(o.Scale)
	start := time.Now()

	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	cfg := runner.SweepConfig{Jobs: jobs, Trace: traceOut != ""}

	// The journal file doubles as resume input (read first) and sink
	// (appended to as new jobs finish).
	var journal *os.File
	if resume != "" {
		f, err := os.OpenFile(resume, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		journal = f
		cfg.Journal = f
	}

	plan := runner.ReproducePlan(o)
	total := len(plan)
	if !quiet {
		cfg.OnProgress = func(p sweep.Progress) {
			fmt.Printf("  [%d/%d] %d simulated, %d cache hits, %d resumed (%s)\n",
				p.Completed, total, p.Simulated, p.CacheHits, p.Resumed,
				p.Elapsed.Round(time.Millisecond))
		}
	}
	s := runner.NewSweep(cfg)
	if journal != nil {
		loaded, err := s.Resume(journal)
		if err != nil {
			return fmt.Errorf("replaying %s: %w", resume, err)
		}
		if loaded > 0 {
			fmt.Printf("resumed %d finished jobs from %s\n", loaded, resume)
		}
		// A journal killed mid-write ends with a partial line and no
		// newline; terminate it so the first appended record stays intact.
		if st, err := journal.Stat(); err == nil && st.Size() > 0 {
			buf := make([]byte, 1)
			if _, err := journal.ReadAt(buf, st.Size()-1); err == nil && buf[0] != '\n' {
				if _, err := journal.Write([]byte("\n")); err != nil {
					return fmt.Errorf("terminating %s: %w", resume, err)
				}
			}
		}
	}

	// Phase 1: simulate the whole deduplicated plan at full parallelism —
	// either locally or as one batch on a resident sweepd daemon. Even if an
	// artifact later fails to assemble, every completed job has already been
	// streamed to the journal (local) or the daemon's store (server) for the
	// next attempt.
	if server != "" {
		fmt.Printf("plan: %d unique jobs (scale %d, server %s)\n", total, scale, server)
		if err := serverPrefetch(s, server, plan, quiet); err != nil {
			return err
		}
	} else {
		fmt.Printf("plan: %d unique jobs (scale %d, %d workers)\n", total, scale, jobs)
		if err := s.Prefetch(plan); err != nil {
			return err
		}
	}

	// Phase 2: assemble artifacts — pure cache hits from here on.
	var index []string
	write := func(name, content string) error {
		path := filepath.Join(out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		index = append(index, name)
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
		return nil
	}

	for _, a := range artifacts(s, o) {
		content, err := a.render()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if err := write(a.name, content); err != nil {
			return err
		}
	}

	// The summary must stay byte-identical across -jobs values and reruns,
	// so it carries job counts but no wall times; timing goes to stdout.
	stats := s.Stats()
	var sum strings.Builder
	fmt.Fprintf(&sum, "reproduction artifacts (scale %d, %d unique jobs)\n", scale, total)
	for _, n := range index {
		fmt.Fprintf(&sum, "  %s\n", n)
	}
	if err := write("summary.txt", sum.String()); err != nil {
		return err
	}
	if metricsOut != "" {
		if err := s.WriteMetricsFile(metricsOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := s.WriteTraceFile(traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	fmt.Printf("sweep: %s (total %s)\n", stats, time.Since(start).Round(time.Millisecond))
	return nil
}

// serverPrefetch runs the whole plan as one batch on a sweepd daemon and
// replays the downloaded results journal into the local sweep, so artifact
// assembly afterwards is pure cache hits — exactly like a local prefetch.
// The daemon dedupes the batch against everything it has ever run, so a
// re-submitted reproduction costs no simulation at all.
func serverPrefetch(s *runner.Sweep, server string, plan []sweep.JobKey, quiet bool) error {
	client := &serve.Client{BaseURL: server}
	st, err := client.Submit(serve.BatchRequest{Tenant: "reproduce", Keys: plan})
	if err != nil {
		return fmt.Errorf("submitting to %s: %w", server, err)
	}
	fmt.Printf("submitted batch %s (%d jobs)\n", st.ID, st.Jobs)
	var onProgress func(serve.BatchStatus)
	if !quiet {
		last := -1
		onProgress = func(bs serve.BatchStatus) {
			if bs.Completed != last {
				last = bs.Completed
				fmt.Printf("  [%d/%d] server batch %s\n", bs.Completed, bs.Jobs, bs.ID)
			}
		}
	}
	fin, err := client.Wait(st.ID, onProgress)
	if err != nil {
		return err
	}
	if fin.State != serve.StateDone {
		return fmt.Errorf("server batch %s: %s: %s", fin.ID, fin.State, fin.Error)
	}
	if fin.Failed > 0 {
		return fmt.Errorf("server batch %s: %d of %d jobs failed", fin.ID, fin.Failed, fin.Jobs)
	}
	rc, err := client.Results(fin.ID)
	if err != nil {
		return err
	}
	defer rc.Close()
	loaded, err := s.Resume(rc)
	if err != nil {
		return fmt.Errorf("replaying server results: %w", err)
	}
	fmt.Printf("loaded %d results from %s\n", loaded, server)
	return nil
}

// artifact names one output file and how to produce it.
type artifact struct {
	name   string
	render func() (string, error)
}

// artifacts lists every output in writing order. All simulation goes
// through the shared sweep, so characterization runs (Tables V and VI) and
// the Fig. 5/6/7 policy runs are simulated once each.
func artifacts(s *runner.Sweep, o runner.ExpOptions) []artifact {
	static := func(content string) func() (string, error) {
		return func() (string, error) { return content, nil }
	}
	arts := []artifact{
		{"table1.txt", static(tableI())},
		{"table3.txt", static(tableIII())},
		{"table5.txt", func() (string, error) {
			rows, err := s.TableV(o)
			if err != nil {
				return "", err
			}
			return runner.FormatTableV(rows), nil
		}},
		{"table6.txt", func() (string, error) {
			rows, err := s.TableVI(o)
			if err != nil {
				return "", err
			}
			return runner.FormatTableVI(rows), nil
		}},
	}
	for _, bench := range runner.Fig1Benchmarks() {
		bench := bench
		arts = append(arts, artifact{"fig1_" + bench + ".txt", func() (string, error) {
			return fig1(s, bench, o)
		}})
	}
	arts = append(arts,
		artifact{"fig5.txt", func() (string, error) {
			rows, err := s.Fig5(o)
			if err != nil {
				return "", err
			}
			return runner.FormatNormalized("Fig. 5: Static Compression", "traffic", rows) +
				"\n" + runner.FormatNormalized("Fig. 5: Static Compression", "time", rows), nil
		}},
		artifact{"fig6.txt", func() (string, error) {
			rows, err := s.Fig6(o)
			if err != nil {
				return "", err
			}
			return runner.FormatNormalized("Fig. 6: Adaptive Compression", "traffic", rows) +
				"\n" + runner.FormatNormalized("Fig. 6: Adaptive Compression", "time", rows), nil
		}},
		artifact{"fig7.txt", func() (string, error) {
			rows, err := s.Fig7(o)
			if err != nil {
				return "", err
			}
			return runner.FormatNormalized("Fig. 7: Energy Consumption", "energy", rows), nil
		}},
		artifact{"area.txt", static(runner.FormatAreaOverhead())},
	)
	return arts
}

func fig1(s *runner.Sweep, bench string, o runner.ExpOptions) (string, error) {
	series, err := s.Fig1(bench, runner.Fig1Samples, o)
	if err != nil {
		return "", err
	}
	body := runner.FormatFig1(bench, series)
	phases := runner.SummarizeFig1Phases(series)
	body += "\nphase summary (mean compressed bytes, halves):\n"
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		p := phases[alg]
		body += fmt.Sprintf("  %-9v %6.1f B -> %6.1f B\n", alg, p[0], p[1])
	}
	return body, nil
}

func tableI() string {
	var t strings.Builder
	fmt.Fprintf(&t, "TABLE I: Supported data patterns\n")
	for _, p := range comp.AllDataPatterns() {
		fmt.Fprintf(&t, "%-20s FPC=%-8v BDI=%-8v C-Pack+Z=%v\n", p,
			comp.SupportedPatterns(comp.FPC)[p],
			comp.SupportedPatterns(comp.BDI)[p],
			comp.SupportedPatterns(comp.CPackZ)[p])
	}
	return t.String()
}

func tableIII() string {
	var t strings.Builder
	fmt.Fprintf(&t, "TABLE III: codec costs (7nm, 1 GHz)\n")
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		c := comp.CostOf(alg)
		fmt.Fprintf(&t, "%-9v comp %2d cy, decomp %2d cy, %5.0f µm², %.1f pJ/block\n",
			alg, c.CompressionCycles, c.DecompressionCycles, c.AreaUM2, c.BlockEnergyPJ())
	}
	return t.String()
}
