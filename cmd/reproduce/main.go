// Command reproduce regenerates every table and figure of the paper in one
// run and writes each artifact to a results directory:
//
//	reproduce -out results -scale 4
//
// Produced files: table1.txt, table3.txt, table5.txt, table6.txt,
// fig1_SC.txt, fig1_FIR.txt, fig5.txt, fig6.txt, fig7.txt, area.txt and a
// summary.txt index.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	out := flag.String("out", "results", "output directory")
	scale := flag.Int("scale", int(workloads.ScaleSmall), "input scale factor")
	cus := flag.Int("cus", 0, "CUs per GPU (0 = default)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	o := runner.ExpOptions{Scale: workloads.Scale(*scale), CUsPerGPU: *cus}
	var index []string
	start := time.Now()

	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		index = append(index, name)
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}

	// Static tables.
	var t1 strings.Builder
	fmt.Fprintf(&t1, "TABLE I: Supported data patterns\n")
	for _, p := range comp.AllDataPatterns() {
		fmt.Fprintf(&t1, "%-20s FPC=%-8v BDI=%-8v C-Pack+Z=%v\n", p,
			comp.SupportedPatterns(comp.FPC)[p],
			comp.SupportedPatterns(comp.BDI)[p],
			comp.SupportedPatterns(comp.CPackZ)[p])
	}
	write("table1.txt", t1.String())

	var t3 strings.Builder
	fmt.Fprintf(&t3, "TABLE III: codec costs (7nm, 1 GHz)\n")
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		c := comp.CostOf(alg)
		fmt.Fprintf(&t3, "%-9v comp %2d cy, decomp %2d cy, %5.0f µm², %.1f pJ/block\n",
			alg, c.CompressionCycles, c.DecompressionCycles, c.AreaUM2, c.BlockEnergyPJ())
	}
	write("table3.txt", t3.String())

	// Simulated tables.
	t5, err := runner.TableV(o)
	must(err)
	write("table5.txt", runner.FormatTableV(t5))

	t6, err := runner.TableVI(o)
	must(err)
	write("table6.txt", runner.FormatTableVI(t6))

	// Figures.
	for _, bench := range []string{"SC", "FIR"} {
		s, err := runner.Fig1(bench, 500, o)
		must(err)
		body := runner.FormatFig1(bench, s)
		phases := runner.SummarizeFig1Phases(s)
		body += "\nphase summary (mean compressed bytes, halves):\n"
		for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
			p := phases[alg]
			body += fmt.Sprintf("  %-9v %6.1f B -> %6.1f B\n", alg, p[0], p[1])
		}
		write("fig1_"+bench+".txt", body)
	}

	f5, err := runner.Fig5(o)
	must(err)
	write("fig5.txt", runner.FormatNormalized("Fig. 5: Static Compression", "traffic", f5)+
		"\n"+runner.FormatNormalized("Fig. 5: Static Compression", "time", f5))

	f6, err := runner.Fig6(o)
	must(err)
	write("fig6.txt", runner.FormatNormalized("Fig. 6: Adaptive Compression", "traffic", f6)+
		"\n"+runner.FormatNormalized("Fig. 6: Adaptive Compression", "time", f6))

	f7, err := runner.Fig7(o)
	must(err)
	write("fig7.txt", runner.FormatNormalized("Fig. 7: Energy Consumption", "energy", f7))

	write("area.txt", runner.FormatAreaOverhead())

	var sum strings.Builder
	fmt.Fprintf(&sum, "reproduction artifacts (scale %d, %s)\n", *scale,
		time.Since(start).Round(time.Millisecond))
	for _, n := range index {
		fmt.Fprintf(&sum, "  %s\n", n)
	}
	write("summary.txt", sum.String())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
