// Command ablations runs the extension and design-choice studies that go
// beyond the paper's evaluation:
//
//	ablations -study sampling   sampling-phase geometry sweep (Sec. V choice)
//	ablations -study onoff      single-codec on/off mode (Sec. V)
//	ablations -study link       fabric energy classes (Sec. II)
//	ablations -study extensions BPC candidate set + dynamic λ
//	ablations -study topology   shared bus vs crossbar
//	ablations -study l15        remote cache (Arunkumar et al.) × compression
//	ablations -study scale      GPU-count sweep
//	ablations -study all        everything
//
// With -server each job executes on a resident sweepd daemon instead of the
// local simulator; study output is byte-identical either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"mgpucompress/internal/fabric"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/serve"
	"mgpucompress/internal/sweep"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablations: ")
	study := flag.String("study", "all", "sampling|onoff|link|extensions|topology|l15|scale|bandwidth|all")
	scale := flag.Int("scale", 2, "input scale factor")
	cus := flag.Int("cus", 0, "CUs per GPU (0 = default)")
	gpus := flag.Int("gpus", 0, "GPU count (0 = the paper's 4)")
	topology := flag.String("topology", "", "fabric topology for every study except -study topology (which sweeps them all)")
	bench := flag.String("bench", "SC", "benchmark for single-benchmark studies")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	simCores := flag.Int("sim-cores", 1, "engine workers per simulation (results are byte-identical for any value)")
	seed := flag.Int64("seed", 0, "pin every job's input seed (0 = per-job fingerprint seeds)")
	metricsOut := flag.String("metrics-out", "", "write every job's metric snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of all jobs to this file")
	server := flag.String("server", "", "sweepd base URL (e.g. http://127.0.0.1:8372): execute jobs on a resident daemon instead of simulating locally")
	flag.Parse()

	if *simCores < 1 {
		log.Fatalf("-sim-cores must be at least 1 (got %d)", *simCores)
	}

	o := runner.ExpOptions{Scale: workloads.Scale(*scale), CUsPerGPU: *cus, Seed: *seed,
		SimCores: *simCores, Topology: fabric.Topology(*topology), NumGPUs: *gpus}
	// One shared sweep across studies: -study all re-uses baseline and
	// adaptive runs that several studies have in common.
	cfg := runner.SweepConfig{Jobs: *jobs, Trace: *traceOut != ""}
	if *server != "" {
		if *traceOut != "" {
			log.Fatal("-trace-out requires local execution: results fetched from a daemon carry no span timeline")
		}
		cfg.Run = remoteRun(&serve.Client{BaseURL: *server})
	}
	s := runner.NewSweep(cfg)
	defer func() {
		if *metricsOut != "" {
			check(s.WriteMetricsFile(*metricsOut))
		}
		if *traceOut != "" {
			check(s.WriteTraceFile(*traceOut))
		}
	}()
	run := map[string]func(){
		"sampling": func() {
			rows, err := s.SamplingAblation(*bench, o)
			check(err)
			fmt.Print(runner.FormatSamplingAblation(*bench, rows))
		},
		"onoff": func() {
			rows, err := s.OnOffAblation([]string{"AES", "MT"}, o)
			check(err)
			fmt.Print(runner.FormatOnOffAblation(rows))
		},
		"link": func() {
			rows, err := s.LinkClassAblation(*bench, o)
			check(err)
			fmt.Print(runner.FormatLinkClassAblation(*bench, rows))
		},
		"extensions": func() {
			rows, err := s.ExtensionAblation(runner.Benchmarks(), o)
			check(err)
			fmt.Print(runner.FormatExtensionAblation(rows))
		},
		"topology": func() {
			rows, err := s.TopologyAblation([]string{"BS", "MT", "SC"}, o)
			check(err)
			fmt.Print(runner.FormatTopologyAblation(rows))
		},
		"l15": func() {
			rows, err := s.RemoteCacheAblation([]string{"SC", "MT", "AES"}, o)
			check(err)
			fmt.Print(runner.FormatRemoteCacheAblation(rows))
		},
		"scale": func() {
			rows, err := s.ScalabilityAblation(*bench, o, []int{2, 4, 8})
			check(err)
			fmt.Print(runner.FormatScalabilityAblation(rows))
		},
		"bandwidth": func() {
			rows, err := s.BandwidthAblation(*bench, o, []int{5, 10, 20, 40, 80, 160})
			check(err)
			fmt.Print(runner.FormatBandwidthAblation(*bench, rows))
		},
	}
	if *study == "all" {
		for _, name := range []string{"sampling", "onoff", "link", "extensions", "topology", "l15", "scale", "bandwidth"} {
			fmt.Printf("=== %s ===\n", name)
			run[name]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*study]
	if !ok {
		log.Fatalf("unknown study %q", *study)
	}
	f()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// remoteRun adapts a sweepd client to the sweep engine's run-function shape:
// each job becomes a single-key batch on the daemon, whose memo cache makes
// repeats free. The local engine keeps its own cache, ordering and progress
// accounting, so studies behave identically either way.
func remoteRun(c *serve.Client) func(sweep.JobKey) (*runner.Result, error) {
	return func(k sweep.JobKey) (*runner.Result, error) {
		raw, err := c.RunJob(k)
		if err != nil {
			return nil, err
		}
		res := new(runner.Result)
		if err := json.Unmarshal(raw, res); err != nil {
			return nil, fmt.Errorf("decoding remote result %s: %w", k.Fingerprint(), err)
		}
		return res, nil
	}
}
