// Command mgpucomp runs one benchmark on the simulated 4-GPU system under a
// chosen compression policy and prints the paper's metrics for the run.
//
// Usage:
//
//	mgpucomp -bench MT -policy adaptive -lambda 6 -scale 4
//	mgpucomp -bench BS -policy cpackz -characterize
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/stats"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgpucomp: ")

	bench := flag.String("bench", "MT", "benchmark: AES|BS|FIR|GD|KM|MT|SC")
	flag.StringVar(bench, "workload", "MT", "alias for -bench")
	policy := flag.String("policy", "none", "compression policy: none|fpc|bdi|cpackz|adaptive|dynamic")
	lambda := flag.Float64("lambda", 6, "adaptive penalty λ (Eq. 1)")
	scale := flag.Int("scale", int(workloads.ScaleSmall), "input scale factor")
	cus := flag.Int("cus", 0, "CUs per GPU (0 = default 4; paper scale is 64)")
	characterize := flag.Bool("characterize", false, "also run every codec on every transfer (Table V/VI columns)")
	gpus := flag.Int("gpus", 0, "GPU count (0 = the paper's 4)")
	topology := flag.String("topology", "", "fabric topology: bus (paper), crossbar, ring, mesh or tree")
	remoteCache := flag.Bool("remote-cache", false, "enable the L1.5 remote-data cache extension")
	traceFlag := flag.Bool("trace", false, "print a fabric transfer timeline summary")
	statsFlag := flag.Bool("stats", false, "print the hardware counter report")
	seed := flag.Int64("seed", 0, "workload input-generation seed (0 = the workload's fixed default)")
	simCores := flag.Int("sim-cores", 1, "engine workers advancing partitions in parallel (results are byte-identical for any value)")
	faultProfile := flag.String("fault-profile", "off", "fault-injection profile: off|light|aggressive or k=v list (corrupt=,drop=,delay=,delaycycles=,timeout=,attempts=,degradek=)")
	metricsOut := flag.String("metrics-out", "", "write the full metric snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file")
	flag.Parse()

	if *simCores < 1 {
		log.Fatalf("-sim-cores must be at least 1 (got %d)", *simCores)
	}

	pol, err := core.ParsePolicy(strings.ToLower(*policy))
	if err != nil {
		log.Fatal(err)
	}
	prof, err := fault.Parse(*faultProfile)
	if err != nil {
		log.Fatal(err)
	}
	opts := runner.Options{
		Scale:        workloads.Scale(*scale),
		CUsPerGPU:    *cus,
		Policy:       pol,
		Lambda:       *lambda,
		Characterize: *characterize,
		NumGPUs:      *gpus,
		Topology:     fabric.Topology(*topology),
		RemoteCache:  *remoteCache,
		Trace:        *traceFlag || *traceOut != "",
		Seed:         *seed,
		Fault:        prof,
		SimCores:     *simCores,
	}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}
	m, err := runner.Run(strings.ToUpper(*bench), opts)
	if err != nil {
		log.Fatal(err)
	}
	if *metricsOut != "" {
		if err := m.WriteMetricsFile(*metricsOut); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		if err := m.WriteTraceFile(*traceOut); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("benchmark          %s\n", m.Workload)
	fmt.Printf("policy             %s (λ=%g)\n", m.Policy, *lambda)
	fmt.Printf("exec time          %d cycles (%.3f ms @ 1 GHz)\n",
		m.ExecCycles, float64(m.ExecCycles)/1e6)
	fmt.Printf("fabric traffic     %d bytes\n", m.FabricBytes)
	fmt.Printf("remote reads       %s K (%d)\n", stats.FormatKilo(m.Traffic.RemoteReads), m.Traffic.RemoteReads)
	fmt.Printf("remote writes      %s K (%d)\n", stats.FormatKilo(m.Traffic.RemoteWrites), m.Traffic.RemoteWrites)
	fmt.Printf("payload entropy    %.3f (aggregate), %.3f (per-line mean)\n",
		m.Traffic.Entropy(), m.Traffic.MeanEntropy())
	fmt.Printf("compression ratio  %.2f (payload, achieved by the policy)\n", m.CompressionRatio())
	fmt.Printf("compressed lines   %d / %d\n", m.Traffic.CompressedLines, m.Traffic.Lines)
	fmt.Printf("remote read lat.   mean %.0f cy, p50 %.0f, p95 %.0f, max %.0f (%d reads)\n",
		m.ReadLatency.Mean(), m.ReadLatency.Percentile(50),
		m.ReadLatency.Percentile(95), m.ReadLatency.Max(), m.ReadLatency.Count())
	fmt.Printf("fabric energy      %.1f nJ\n", m.FabricEnergyPJ/1e3)
	fmt.Printf("codec energy       %.1f nJ\n", m.CodecEnergyPJ/1e3)

	if *characterize {
		fmt.Println("\nper-codec characterization (ratio over all transferred payloads):")
		for _, alg := range []comp.Algorithm{comp.BDI, comp.FPC, comp.CPackZ} {
			fmt.Printf("  %-9s ratio %.2f   top patterns: ", alg, m.CodecRatio(alg))
			for _, t := range m.PerCodec[alg].Patterns.Top(3) {
				fmt.Printf("(%d) %.1f%%  ", t.Pattern, t.Share*100)
			}
			fmt.Println()
		}
	}
	if *statsFlag {
		fmt.Println("\nhardware counters:")
		fmt.Print(m.Platform.String())
	}
	if *traceFlag && m.TraceLog != nil {
		fmt.Println()
		bin := sim.Time(m.ExecCycles/60 + 1)
		fmt.Print(m.TraceLog.Summary(bin, 8))
	}
	os.Exit(0)
}
