// Command benchreport measures the hot paths and writes a machine-readable
// benchmark report (BENCH_PR10.json): the zero-allocation
// codec/bitstream/event-queue microbenchmarks, a workload × policy macro
// table (simulated cycles, wall time, allocations per full run), the
// -sim-cores scaling table of the conservative parallel engine, the
// window-scheduling table comparing the adaptive window scheduler against
// the classic fixed-lookahead schedule (windows per run, events per window,
// with exec-cycles equality checked on every row), and the topology table
// running the adaptive controller with per-link codec selection against a
// single global controller on every switched interconnect at 8, 16 and 64
// GPUs (with the parallel engine's metric snapshots byte-compared against
// the serial run on every row).
//
// The JSON also embeds the pre-optimization baseline numbers (measured on the
// commit before PR 4, same machine class) and the resulting speedups, so
// claimed performance numbers are committed, reviewable artifacts rather than
// PR-description footnotes. The sim-cores table records host_cpus alongside
// the speedups: wall-clock gains require real host cores, while the
// exec_cycles column proves the runs stayed byte-identical.
//
// Usage:
//
//	go run ./cmd/benchreport [-out BENCH_PR10.json] [-short]
//
// BENCH_SCALE (default 1) selects the macro workload scale.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mgpucompress/internal/bitstream"
	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/sim/schedbench"
	"mgpucompress/internal/workloads"
)

// MicroResult is one microbenchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// MacroResult is one (workload, policy) end-to-end run.
type MacroResult struct {
	Workload    string  `json:"workload"`
	Policy      string  `json:"policy"`
	ExecCycles  uint64  `json:"exec_cycles"`
	FabricBytes uint64  `json:"fabric_bytes"`
	WallMs      float64 `json:"wall_ms"`
	Allocs      uint64  `json:"allocs"`
}

// Baseline holds the pre-PR encode-path numbers this PR is measured against
// (per-codec Compress on the low-dynamic-range patterned line, and the
// FPC+BDI+CPackZ sampling aggregate, i.e. the per-transfer cost of sizing
// one line under every paper codec).
type Baseline struct {
	Description       string             `json:"description"`
	EncodeNsPerOp     map[string]float64 `json:"encode_ns_per_op"`
	EncodeAllocsPerOp map[string]int64   `json:"encode_allocs_per_op"`
	SamplingTrioNs    float64            `json:"sampling_trio_ns_per_line"`
}

// CoresResult is one -sim-cores point of the parallel-engine scaling table:
// the macro workload set run end to end with the given engine worker count.
type CoresResult struct {
	Cores  int     `json:"cores"`
	WallMs float64 `json:"wall_ms"`
	// Speedup is wall(serial) / wall(cores) over the whole table.
	Speedup float64 `json:"speedup_vs_serial"`
	// ExecCycles sums simulated cycles over the table; identical in every
	// row by the engine's determinism contract (checked here).
	ExecCycles uint64 `json:"exec_cycles"`
}

// WindowResult is one row of the window-scheduling table: the same workload
// run under the default adaptive window scheduler and under the classic
// fixed-lookahead schedule (the PR 8 engine's only mode). Both runs must
// simulate the identical execution — exec_cycles_equal records the check —
// so the window counts compare synchronization cost, never behaviour.
// Workloads prefixed "sched/" are the synthetic engine schedules of
// internal/sim/schedbench; the rest are the macro workload set, whose
// fine-grained per-cycle fabric traffic bounds any conservative schedule.
type WindowResult struct {
	Workload        string  `json:"workload"`
	ExecCycles      uint64  `json:"exec_cycles"`
	ExecCyclesEqual bool    `json:"exec_cycles_equal"`
	Windows         uint64  `json:"windows"`
	FixedWindows    uint64  `json:"fixed_lookahead_windows"`
	Reduction       float64 `json:"window_reduction"`
	EventsPerWindow float64 `json:"events_per_window"`
	SerialWindows   uint64  `json:"serial_fallback_windows"`
	BarrierWindows  uint64  `json:"barrier_windows"`
}

// TopoResult is one row of the topology table: a single workload on one
// interconnect shape, run uncompressed, under the paper's per-link adaptive
// controller, and under one shared global controller. The global controller
// sees every endpoint's traffic but can only pick one codec for the whole
// fabric — the counterpoint the paper's Sec. V design argues against — so
// per_link_fabric_bytes <= global_fabric_bytes measures exactly what
// per-link selection buys. ParallelSnapshotEqual records that the adaptive
// row's full metric snapshot is byte-identical when re-run on 8 engine
// cores (the global controller is inherently serial and is not re-run).
type TopoResult struct {
	Topology              string  `json:"topology"`
	GPUs                  int     `json:"gpus"`
	Workload              string  `json:"workload"`
	BaseExecCycles        uint64  `json:"base_exec_cycles"`
	BaseFabricBytes       uint64  `json:"base_fabric_bytes"`
	PerLinkExecCycles     uint64  `json:"per_link_exec_cycles"`
	PerLinkFabricBytes    uint64  `json:"per_link_fabric_bytes"`
	GlobalExecCycles      uint64  `json:"global_exec_cycles"`
	GlobalFabricBytes     uint64  `json:"global_fabric_bytes"`
	PerLinkSpeedup        float64 `json:"per_link_speedup"`
	GlobalSpeedup         float64 `json:"global_speedup"`
	PerLinkTraffic        float64 `json:"per_link_traffic_vs_base"`
	GlobalTraffic         float64 `json:"global_traffic_vs_base"`
	WallMs                float64 `json:"wall_ms"`
	ParallelSnapshotEqual bool    `json:"parallel_snapshot_equal"`
}

// Report is the benchmark-report JSON schema.
type Report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// HostCPUs bounds any achievable sim-cores wall-clock speedup: on a
	// single-CPU host the scaling table can only demonstrate that parallel
	// mode costs nothing, not that it gains.
	HostCPUs      int                `json:"host_cpus"`
	Scale         int                `json:"macro_scale"`
	Micro         []MicroResult      `json:"micro"`
	Baseline      Baseline           `json:"baseline_pre_pr"`
	EncodeSpeedup map[string]float64 `json:"encode_speedup_vs_baseline"`
	// SizeProbeSpeedup compares the size-only probe (CompressedBits) that
	// now backs sampling against the full encode it replaced.
	SizeProbeSpeedup map[string]float64 `json:"size_probe_speedup_vs_baseline"`
	SamplingTrio     struct {
		NsPerLine float64 `json:"ns_per_line"`
		Speedup   float64 `json:"speedup_vs_baseline"`
	} `json:"sampling_trio"`
	Macro      []MacroResult  `json:"macro"`
	SimCores   []CoresResult  `json:"sim_cores"`
	Windows    []WindowResult `json:"window_scheduling"`
	Topologies []TopoResult   `json:"topologies"`
}

// preBaseline is the recorded state of the encode hot path on the parent
// commit (go test -bench, same flags, patterned low-dynamic-range lines).
var preBaseline = Baseline{
	Description: "parent commit, BenchmarkCompress (allocating Compress) on patterned lines; " +
		"sampling trio = sum of FPC+BDI+CPackZ size probes per line",
	EncodeNsPerOp:     map[string]float64{"FPC": 182.9, "BDI": 611.6, "CPackZ": 434.8, "BPC": 1065},
	EncodeAllocsPerOp: map[string]int64{"FPC": 1, "BDI": 9, "CPackZ": 3, "BPC": 3},
	SamplingTrioNs:    1229,
}

func benchLines(grade string) [][]byte {
	rng := rand.New(rand.NewSource(42))
	lines := make([][]byte, 64)
	for i := range lines {
		line := make([]byte, comp.LineSize)
		switch grade {
		case "zero":
		case "patterned":
			base := uint64(1)<<40 + uint64(i)*96
			for w := 0; w < 8; w++ {
				v := base + uint64(w)*3
				for by := 0; by < 8; by++ {
					line[w*8+by] = byte(v >> (8 * by))
				}
			}
		default: // random
			rng.Read(line)
		}
		lines[i] = line
	}
	return lines
}

func micro(name string, fn func(b *testing.B)) MicroResult {
	r := testing.Benchmark(fn)
	return MicroResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// codecKeys gives each algorithm a stable ASCII key shared between
// benchmark names and the baseline table ("C-Pack+Z" is awkward in both).
var codecKeys = map[comp.Algorithm]string{
	comp.FPC: "FPC", comp.BDI: "BDI", comp.CPackZ: "CPackZ", comp.BPC: "BPC",
}

func codecMicro(alg comp.Algorithm, grade string) (into, sizeOnly MicroResult) {
	lines := benchLines(grade)
	c := comp.NewCompressor(alg)
	key := codecKeys[alg]
	into = micro(fmt.Sprintf("comp/CompressInto/%s/%s", key, grade), func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := c.CompressInto(buf[:0], lines[i%len(lines)])
			buf = enc.Data
		}
	})
	sizeOnly = micro(fmt.Sprintf("comp/CompressedBits/%s/%s", key, grade), func(b *testing.B) {
		var sink int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += c.CompressedBits(lines[i%len(lines)])
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	})
	return into, sizeOnly
}

func microSuite() []MicroResult {
	var out []MicroResult

	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ, comp.BPC} {
		for _, grade := range []string{"zero", "patterned", "random"} {
			into, size := codecMicro(alg, grade)
			out = append(out, into, size)
		}
	}

	// The sampling trio: per-transfer cost of sizing one line under all
	// three paper codecs — the inner loop of the adaptive sampling phase.
	trio := []comp.Compressor{comp.NewFPC(), comp.NewBDI(), comp.NewCPackZ()}
	lines := benchLines("patterned")
	out = append(out, micro("comp/SamplingTrio/patterned", func(b *testing.B) {
		var sink int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			line := lines[i%len(lines)]
			for _, c := range trio {
				sink += c.CompressedBits(line)
			}
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}))

	// Bitstream word-level fast paths.
	out = append(out, micro("bitstream/WriteBits/w8", func(b *testing.B) {
		var w bitstream.Writer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Reset()
			for j := 0; j < 64; j++ {
				w.WriteBits(uint64(j), 8)
			}
		}
	}))
	payload := make([]byte, comp.LineSize)
	out = append(out, micro("bitstream/WriteBytesAligned/64B", func(b *testing.B) {
		var w bitstream.Writer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Reset()
			w.WriteBytes(payload)
		}
	}))

	// Event-queue churn through the allocation-free ScheduleTick path.
	out = append(out, micro("sim/ScheduleTickChurn", func(b *testing.B) {
		e := sim.NewEngine()
		p := e.Partition(0)
		h := tickSink{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ScheduleTick(p.Now()+sim.Time(i%64), h)
			if i%1024 == 1023 {
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}))

	return out
}

type tickSink struct{}

func (tickSink) Handle(sim.Event) error { return nil }

func macroSuite(scale int, short bool) ([]MacroResult, error) {
	abbrevs := []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
	policies := []core.PolicyID{
		core.PolicyNone, core.PolicyFPC, core.PolicyBDI, core.PolicyCPackZ, core.PolicyAdaptive,
	}
	if short {
		abbrevs = []string{"SC", "MT"}
		policies = []core.PolicyID{core.PolicyNone, core.PolicyAdaptive}
	}

	var out []MacroResult
	var ms0, ms1 runtime.MemStats
	for _, ab := range abbrevs {
		for _, pol := range policies {
			opts := runner.Options{Scale: workloads.Scale(scale), Policy: pol}
			if pol == core.PolicyAdaptive {
				opts.Lambda = core.DefaultLambda
			}
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res, err := runner.Run(ab, opts)
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ab, pol, err)
			}
			out = append(out, MacroResult{
				Workload:    ab,
				Policy:      pol.String(),
				ExecCycles:  res.ExecCycles,
				FabricBytes: res.FabricBytes,
				WallMs:      float64(wall.Nanoseconds()) / 1e6,
				Allocs:      ms1.Mallocs - ms0.Mallocs,
			})
		}
	}
	return out, nil
}

// coresSuite reruns the macro workload table under the adaptive policy for
// each engine worker count and reports aggregate wall time and speedup
// against the serial row. The summed simulated cycles must not move — the
// engine's byte-identity contract — and the suite fails loudly if they do.
func coresSuite(scale int, short bool) ([]CoresResult, error) {
	abbrevs := []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
	if short {
		abbrevs = []string{"SC", "MT"}
	}
	var out []CoresResult
	// The first pass (cores = 0, unrecorded) warms the heap and page cache so
	// the serial row is not penalized for running first.
	for _, cores := range []int{0, 1, 2, 4, 8} {
		var wall time.Duration
		var cycles uint64
		for _, ab := range abbrevs {
			opts := runner.Options{
				Scale:    workloads.Scale(scale),
				Policy:   core.PolicyAdaptive,
				Lambda:   core.DefaultLambda,
				SimCores: max(cores, 1),
			}
			runtime.GC()
			start := time.Now()
			res, err := runner.Run(ab, opts)
			wall += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s/cores=%d: %w", ab, cores, err)
			}
			cycles += res.ExecCycles
		}
		if cores == 0 {
			continue
		}
		r := CoresResult{
			Cores:      cores,
			WallMs:     float64(wall.Nanoseconds()) / 1e6,
			ExecCycles: cycles,
		}
		if len(out) > 0 {
			if cycles != out[0].ExecCycles {
				return nil, fmt.Errorf("cores=%d simulated %d cycles, serial simulated %d: parallel run diverged",
					cores, cycles, out[0].ExecCycles)
			}
			r.Speedup = round2(out[0].WallMs / r.WallMs)
		} else {
			r.Speedup = 1
		}
		out = append(out, r)
	}
	return out, nil
}

// windowSuite builds the window-scheduling table: every workload twice, once
// under adaptive windows and once pinned to the fixed lookahead, asserting
// the simulated execution did not move. The synthetic schedules run first —
// they are where traffic has locality and the barrier-count reduction is
// large; the macro rows document honestly that a near-saturated shared bus
// leaves a conservative scheduler little room (cross messages arrive faster
// than one per link-latency, so windows already batch several of them).
func windowSuite(scale int, short bool) ([]WindowResult, error) {
	var out []WindowResult
	for _, shape := range schedbench.Shapes {
		adaptive, err := schedbench.Run(shape, 7, 1, 0)
		if err != nil {
			return nil, fmt.Errorf("sched/%s: %w", shape, err)
		}
		fixed, err := schedbench.Run(shape, 7, 1, schedbench.LinkLatency)
		if err != nil {
			return nil, fmt.Errorf("sched/%s fixed: %w", shape, err)
		}
		equal := adaptive.Digest == fixed.Digest && adaptive.Cycles == fixed.Cycles
		if !equal {
			return nil, fmt.Errorf("sched/%s: adaptive and fixed runs diverged", shape)
		}
		out = append(out, WindowResult{
			Workload:        "sched/" + string(shape),
			ExecCycles:      uint64(adaptive.Cycles),
			ExecCyclesEqual: equal,
			Windows:         adaptive.Windows,
			FixedWindows:    fixed.Windows,
			Reduction:       round2(float64(fixed.Windows) / float64(adaptive.Windows)),
			EventsPerWindow: round2(adaptive.EventsPerWindow),
			SerialWindows:   adaptive.SerialWindows,
			BarrierWindows:  adaptive.BarrierWindows,
		})
	}

	abbrevs := []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
	if short {
		abbrevs = []string{"SC", "MT"}
	}
	for _, ab := range abbrevs {
		row := WindowResult{Workload: ab}
		var fixedCycles uint64
		for _, la := range []int{0, 2} {
			opts := runner.Options{
				Scale:          workloads.Scale(scale),
				Policy:         core.PolicyAdaptive,
				Lambda:         core.DefaultLambda,
				FixedLookahead: la,
			}
			res, err := runner.Run(ab, opts)
			if err != nil {
				return nil, fmt.Errorf("%s/la=%d: %w", ab, la, err)
			}
			windows := uint64(res.Snapshot.Value("sim/windows"))
			if la == 0 {
				row.ExecCycles = res.ExecCycles
				row.Windows = windows
				row.SerialWindows = uint64(res.Snapshot.Value("sim/serial_fallback_windows"))
				row.BarrierWindows = uint64(res.Snapshot.Value("sim/barrier_spins"))
				if ev, ok := res.Snapshot.Get("sim/events_per_window"); ok && ev.Dist != nil {
					row.EventsPerWindow = round2(ev.Dist.Mean())
				}
			} else {
				row.FixedWindows = windows
				fixedCycles = res.ExecCycles
			}
		}
		row.ExecCyclesEqual = row.ExecCycles == fixedCycles
		if !row.ExecCyclesEqual {
			return nil, fmt.Errorf("%s: adaptive simulated %d cycles, fixed lookahead %d: window policy changed behaviour",
				ab, row.ExecCycles, fixedCycles)
		}
		row.Reduction = round2(float64(row.FixedWindows) / float64(row.Windows))
		out = append(out, row)
	}
	return out, nil
}

// snapshotJSON serializes a run's metric snapshot for byte comparison.
func snapshotJSON(res *runner.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := res.Snapshot.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// topoSuite builds the topology table: one workload on every interconnect
// shape, comparing the paper's per-link adaptive controller against one
// global controller shared by all endpoints, and byte-comparing the
// adaptive run's metric snapshot between 1 and 8 engine cores.
func topoSuite(scale int, short bool) ([]TopoResult, error) {
	type shape struct {
		topo fabric.Topology
		gpus int
	}
	shapes := []shape{
		{fabric.TopologyBus, 4}, {fabric.TopologyCrossbar, 4},
		{fabric.TopologyRing, 8}, {fabric.TopologyRing, 16}, {fabric.TopologyRing, 64},
		{fabric.TopologyMesh, 8}, {fabric.TopologyMesh, 16}, {fabric.TopologyMesh, 64},
		{fabric.TopologyTree, 8}, {fabric.TopologyTree, 16}, {fabric.TopologyTree, 64},
	}
	if short {
		shapes = []shape{
			{fabric.TopologyRing, 8}, {fabric.TopologyMesh, 8}, {fabric.TopologyTree, 8},
		}
	}
	const workload = "SC"
	var out []TopoResult
	for _, sh := range shapes {
		run := func(pol core.PolicyID, cores int) (*runner.Result, error) {
			opts := runner.Options{
				Scale:    workloads.Scale(scale),
				Policy:   pol,
				NumGPUs:  sh.gpus,
				Topology: sh.topo,
				SimCores: cores,
			}
			if pol != core.PolicyNone {
				opts.Lambda = core.DefaultLambda
			}
			return runner.Run(workload, opts)
		}
		start := time.Now()
		base, err := run(core.PolicyNone, 1)
		if err != nil {
			return nil, fmt.Errorf("%s/%d/none: %w", sh.topo, sh.gpus, err)
		}
		perLink, err := run(core.PolicyAdaptive, 1)
		if err != nil {
			return nil, fmt.Errorf("%s/%d/adaptive: %w", sh.topo, sh.gpus, err)
		}
		perLink8, err := run(core.PolicyAdaptive, 8)
		if err != nil {
			return nil, fmt.Errorf("%s/%d/adaptive cores=8: %w", sh.topo, sh.gpus, err)
		}
		global, err := run(core.PolicyAdaptiveGlobal, 1)
		if err != nil {
			return nil, fmt.Errorf("%s/%d/adaptive-global: %w", sh.topo, sh.gpus, err)
		}
		wall := time.Since(start)
		snap1, err := snapshotJSON(perLink)
		if err != nil {
			return nil, err
		}
		snap8, err := snapshotJSON(perLink8)
		if err != nil {
			return nil, err
		}
		equal := bytes.Equal(snap1, snap8)
		if !equal {
			return nil, fmt.Errorf("%s/%d: 8-core metric snapshot diverged from serial run",
				sh.topo, sh.gpus)
		}
		out = append(out, TopoResult{
			Topology:              string(sh.topo),
			GPUs:                  sh.gpus,
			Workload:              workload,
			BaseExecCycles:        base.ExecCycles,
			BaseFabricBytes:       base.FabricBytes,
			PerLinkExecCycles:     perLink.ExecCycles,
			PerLinkFabricBytes:    perLink.FabricBytes,
			GlobalExecCycles:      global.ExecCycles,
			GlobalFabricBytes:     global.FabricBytes,
			PerLinkSpeedup:        round2(float64(base.ExecCycles) / float64(perLink.ExecCycles)),
			GlobalSpeedup:         round2(float64(base.ExecCycles) / float64(global.ExecCycles)),
			PerLinkTraffic:        round2(float64(perLink.FabricBytes) / float64(base.FabricBytes)),
			GlobalTraffic:         round2(float64(global.FabricBytes) / float64(base.FabricBytes)),
			WallMs:                float64(wall.Nanoseconds()) / 1e6,
			ParallelSnapshotEqual: equal,
		})
	}
	return out, nil
}

func main() {
	outPath := flag.String("out", "BENCH_PR10.json", "output JSON path")
	short := flag.Bool("short", false, "smoke mode: 2 workloads × 2 policies, skip nothing else")
	flag.Parse()

	scale := 1
	if s := os.Getenv("BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			scale = v
		}
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		HostCPUs:  runtime.NumCPU(),
		Scale:     scale,
		Baseline:  preBaseline,
	}

	fmt.Fprintln(os.Stderr, "benchreport: running microbenchmarks...")
	rep.Micro = microSuite()

	rep.EncodeSpeedup = map[string]float64{}
	rep.SizeProbeSpeedup = map[string]float64{}
	for _, m := range rep.Micro {
		for alg, base := range preBaseline.EncodeNsPerOp {
			if m.Name == "comp/CompressInto/"+alg+"/patterned" && m.NsPerOp > 0 {
				rep.EncodeSpeedup[alg] = round2(base / m.NsPerOp)
			}
			if m.Name == "comp/CompressedBits/"+alg+"/patterned" && m.NsPerOp > 0 {
				rep.SizeProbeSpeedup[alg] = round2(base / m.NsPerOp)
			}
		}
		if m.Name == "comp/SamplingTrio/patterned" && m.NsPerOp > 0 {
			rep.SamplingTrio.NsPerLine = m.NsPerOp
			rep.SamplingTrio.Speedup = round2(preBaseline.SamplingTrioNs / m.NsPerOp)
		}
	}

	fmt.Fprintln(os.Stderr, "benchreport: running workload × policy macro table...")
	macro, err := macroSuite(scale, *short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.Macro = macro

	fmt.Fprintln(os.Stderr, "benchreport: running -sim-cores scaling table...")
	simCores, err := coresSuite(scale, *short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.SimCores = simCores

	fmt.Fprintln(os.Stderr, "benchreport: running window-scheduling table...")
	windows, err := windowSuite(scale, *short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.Windows = windows

	fmt.Fprintln(os.Stderr, "benchreport: running topology × codec-selection table...")
	topos, err := topoSuite(scale, *short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.Topologies = topos

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d micro, %d macro entries)\n",
		*outPath, len(rep.Micro), len(rep.Macro))
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
